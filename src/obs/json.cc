#include "src/obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace past {
namespace {

void EscapeString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      case '\b':
        out->append("\\b");
        break;
      case '\f':
        out->append("\\f");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void NumberToString(double v, std::string* out) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    out->append(buf);
    return;
  }
  if (!std::isfinite(v)) {
    out->append("null");  // JSON has no Inf/NaN
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
}

void Indent(std::string* out, int indent, int depth) {
  out->push_back('\n');
  out->append(static_cast<size_t>(indent) * static_cast<size_t>(depth), ' ');
}

// --- parser ------------------------------------------------------------------

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool ParseDocument(JsonValue* out) {
    SkipWs();
    if (!ParseValue(out, 0)) {
      return false;
    }
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  static constexpr int kMaxDepth = 64;

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return false;
    }
    pos_ += word.size();
    return true;
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth || pos_ >= text_.size()) {
      return false;
    }
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        if (!ParseString(&s)) {
          return false;
        }
        *out = JsonValue(std::move(s));
        return true;
      }
      case 't':
        if (Literal("true")) {
          *out = JsonValue(true);
          return true;
        }
        return false;
      case 'f':
        if (Literal("false")) {
          *out = JsonValue(false);
          return true;
        }
        return false;
      case 'n':
        if (Literal("null")) {
          *out = JsonValue();
          return true;
        }
        return false;
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    *out = JsonValue::Object();
    SkipWs();
    if (Eat('}')) {
      return true;
    }
    while (true) {
      SkipWs();
      std::string key;
      if (!ParseString(&key)) {
        return false;
      }
      SkipWs();
      if (!Eat(':')) {
        return false;
      }
      SkipWs();
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) {
        return false;
      }
      out->Set(std::move(key), std::move(value));
      SkipWs();
      if (Eat('}')) {
        return true;
      }
      if (!Eat(',')) {
        return false;
      }
    }
  }

  bool ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    *out = JsonValue::Array();
    SkipWs();
    if (Eat(']')) {
      return true;
    }
    while (true) {
      SkipWs();
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) {
        return false;
      }
      out->Append(std::move(value));
      SkipWs();
      if (Eat(']')) {
        return true;
      }
      if (!Eat(',')) {
        return false;
      }
    }
  }

  bool ParseString(std::string* out) {
    if (!Eat('"')) {
      return false;
    }
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        return false;
      }
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out->push_back(esc);
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return false;
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return false;
            }
          }
          // Lone surrogates are not code points; encoding them would emit
          // invalid UTF-8 (found by fuzz_obs_json, corpus:
          // json_surrogate_escape.json). Pair combining is unsupported — our
          // own dumps never emit \u escapes above 0x1f — so reject the range.
          if (code >= 0xd800 && code <= 0xdfff) {
            return false;
          }
          // UTF-8 encode the basic-plane code point.
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xc0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
          } else {
            out->push_back(static_cast<char>(0xe0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
          }
          break;
        }
        default:
          return false;
      }
    }
    return false;  // unterminated string
  }

  bool ParseNumber(JsonValue* out) {
    size_t start = pos_;
    // JSON numbers start with '-' or a digit; strtod alone would also take a
    // leading '+'.
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return false;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      return false;
    }
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return false;
    }
    // Overflowing literals like 1e999 reach here as +/-inf, which Dump() can
    // only render as null (found by fuzz_obs_json, corpus:
    // json_number_overflow.json). Reject them so every accepted number is
    // representable.
    if (!std::isfinite(v)) {
      return false;
    }
    *out = JsonValue(v);
    return true;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

JsonValue& JsonValue::Set(std::string key, JsonValue value) {
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
  return *this;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

const JsonValue* JsonValue::FindPath(std::string_view path) const {
  const JsonValue* node = this;
  while (!path.empty()) {
    size_t slash = path.find('/');
    std::string_view head = path.substr(0, slash);
    node = node->Find(head);
    if (node == nullptr) {
      return nullptr;
    }
    if (slash == std::string_view::npos) {
      break;
    }
    path.remove_prefix(slash + 1);
  }
  return node;
}

void JsonValue::Append(JsonValue value) { items_.push_back(std::move(value)); }

void JsonValue::DumpTo(std::string* out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      out->append("null");
      break;
    case Type::kBool:
      out->append(bool_ ? "true" : "false");
      break;
    case Type::kNumber:
      NumberToString(num_, out);
      break;
    case Type::kString:
      EscapeString(str_, out);
      break;
    case Type::kArray: {
      if (items_.empty()) {
        out->append("[]");
        break;
      }
      out->push_back('[');
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) {
          out->push_back(',');
        }
        if (indent > 0) {
          Indent(out, indent, depth + 1);
        }
        items_[i].DumpTo(out, indent, depth + 1);
      }
      if (indent > 0) {
        Indent(out, indent, depth);
      }
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      if (members_.empty()) {
        out->append("{}");
        break;
      }
      out->push_back('{');
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) {
          out->push_back(',');
        }
        if (indent > 0) {
          Indent(out, indent, depth + 1);
        }
        EscapeString(members_[i].first, out);
        out->push_back(':');
        if (indent > 0) {
          out->push_back(' ');
        }
        members_[i].second.DumpTo(out, indent, depth + 1);
      }
      if (indent > 0) {
        Indent(out, indent, depth);
      }
      out->push_back('}');
      break;
    }
  }
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

bool JsonValue::Parse(std::string_view text, JsonValue* out) {
  Parser p(text);
  return p.ParseDocument(out);
}

}  // namespace past
