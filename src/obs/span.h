// Operation tracing: Span records and the per-network Tracer collecting them.
//
// A Span is one timed unit of work on the simulation's virtual clock: a PAST
// client operation (insert/lookup/reclaim), a maintenance pass, or a single
// overlay hop of a routed message. Spans form trees: a client op span is the
// parent of the hop spans its routed request produces on remote nodes, glued
// together by the parent span id that RouteMsg carries on the wire.
//
// The Tracer is owned by the simulated Network (one per simulation stack) and
// is disabled by default: every record call is a branch-and-return until an
// experiment arms it via --trace-out. Span ids are sequential in record
// order, and all timestamps are sim-time microseconds, so a trace is
// byte-identical across runs and thread counts. A capacity cap bounds memory
// on long runs; overflow is counted, never silently dropped.
//
// Export: ToJson() emits the schema tools/past_stats converts to Chrome
// trace-event JSON (viewable in Perfetto / chrome://tracing).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/obs/json.h"

namespace past {

struct Span {
  uint64_t id = 0;        // sequential, 1-based; 0 is "no span"
  uint64_t parent = 0;    // parent span id, 0 for roots
  uint64_t trace_id = 0;  // correlates spans of one logical operation
  std::string name;       // dotted-lowercase, e.g. "past.insert", "pastry.hop"
  uint32_t node = 0;      // NodeAddr that recorded the span
  int64_t start = 0;      // sim-time microseconds
  int64_t end = 0;
  std::vector<std::pair<std::string, std::string>> annotations;

  // {"id", "parent", "trace_id", "name", "node", "start_us", "end_us",
  //  "annotations": {...}}
  JsonValue ToJson() const;
};

class Tracer {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 20;

  bool enabled() const { return enabled_; }
  void Enable(bool on = true) { enabled_ = on; }
  void SetCapacity(size_t max_spans) { capacity_ = max_spans; }

  // Opens a span; returns its id, or 0 when the tracer is disabled or full
  // (every other call is a no-op for id 0, so call sites need no branches).
  uint64_t StartSpan(std::string name, int64_t start, uint32_t node,
                     uint64_t parent = 0, uint64_t trace_id = 0);
  void EndSpan(uint64_t id, int64_t end);
  void Annotate(uint64_t id, std::string key, std::string value);

  // Records an already-finished span (e.g. a hop interval reconstructed on
  // the receiving node). Returns the span id, 0 when disabled or full.
  uint64_t RecordSpan(std::string name, int64_t start, int64_t end, uint32_t node,
                      uint64_t parent = 0, uint64_t trace_id = 0);

  size_t size() const { return spans_.size(); }
  uint64_t dropped() const { return dropped_; }
  const std::vector<Span>& spans() const { return spans_; }

  void Clear();

  // The span collection as a JSON array, in record order.
  JsonValue SpansJson() const;
  // {"spans": [...], "dropped": n}
  JsonValue ToJson() const;

 private:
  Span* Alloc(std::string name, int64_t start, uint32_t node, uint64_t parent,
              uint64_t trace_id);

  bool enabled_ = false;
  size_t capacity_ = kDefaultCapacity;
  uint64_t next_id_ = 1;
  uint64_t dropped_ = 0;
  std::vector<Span> spans_;
  std::unordered_map<uint64_t, size_t> open_;  // id -> index of unfinished span
};

}  // namespace past
