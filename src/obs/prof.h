// PAST_PROF_SCOPE — opt-in scoped wall-clock profiling into a LogHistogram.
//
// Configure with -DPAST_PROF=ON to compile the hooks in; by default the macro
// expands to nothing and the instrumented hot paths (EventQueue dispatch,
// DiskStore append/fsync) carry zero overhead — not even a branch.
//
// This is the one sanctioned use of a wall clock in src/: profiling real
// elapsed time is inherently nondeterministic, so profiled builds are for
// performance work only. The deterministic ctests (and all recorded
// experiment output) run with PAST_PROF off; the prof.* / disk.*_us
// instruments are registered only when profiling is enabled, so default
// builds emit byte-identical JSON with or without this header included.
#pragma once

#include "src/obs/log_histogram.h"

#if defined(PAST_PROF)

#include <chrono>  // lint:allow-nondeterminism opt-in profiling clock

namespace past {

// Observes the scope's elapsed wall time in microseconds (fractional) into
// the given LogHistogram; a null histogram disables the scope at runtime.
class ProfScope {
 public:
  explicit ProfScope(LogHistogram* hist) : hist_(hist) {
    if (hist_ != nullptr) {
      start_ = std::chrono::steady_clock::now();  // lint:allow-nondeterminism
    }
  }
  ~ProfScope() {
    if (hist_ != nullptr) {
      auto elapsed =
          std::chrono::steady_clock::now() - start_;  // lint:allow-nondeterminism
      hist_->Observe(
          std::chrono::duration<double, std::micro>(elapsed).count());
    }
  }
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  LogHistogram* hist_;
  std::chrono::steady_clock::time_point start_;  // lint:allow-nondeterminism
};

}  // namespace past

#define PAST_PROF_CONCAT_INNER(a, b) a##b
#define PAST_PROF_CONCAT(a, b) PAST_PROF_CONCAT_INNER(a, b)
#define PAST_PROF_SCOPE(hist) \
  ::past::ProfScope PAST_PROF_CONCAT(past_prof_scope_, __LINE__)(hist)

#else  // !PAST_PROF

#define PAST_PROF_SCOPE(hist) \
  do {                        \
  } while (false)

#endif  // PAST_PROF
