#include "src/obs/span.h"

namespace past {

JsonValue Span::ToJson() const {
  JsonValue out = JsonValue::Object();
  out.Set("id", id);
  out.Set("parent", parent);
  out.Set("trace_id", trace_id);
  out.Set("name", name);
  out.Set("node", static_cast<uint64_t>(node));
  out.Set("start_us", start);
  out.Set("end_us", end);
  JsonValue ann = JsonValue::Object();
  for (const auto& [key, value] : annotations) {
    ann.Set(key, value);
  }
  out.Set("annotations", std::move(ann));
  return out;
}

Span* Tracer::Alloc(std::string name, int64_t start, uint32_t node,
                    uint64_t parent, uint64_t trace_id) {
  if (!enabled_) {
    return nullptr;
  }
  if (spans_.size() >= capacity_) {
    ++dropped_;
    return nullptr;
  }
  Span s;
  s.id = next_id_++;
  s.parent = parent;
  s.trace_id = trace_id;
  s.name = std::move(name);
  s.node = node;
  s.start = start;
  s.end = start;
  spans_.push_back(std::move(s));
  return &spans_.back();
}

uint64_t Tracer::StartSpan(std::string name, int64_t start, uint32_t node,
                           uint64_t parent, uint64_t trace_id) {
  Span* s = Alloc(std::move(name), start, node, parent, trace_id);
  if (s == nullptr) {
    return 0;
  }
  open_.emplace(s->id, spans_.size() - 1);
  return s->id;
}

void Tracer::EndSpan(uint64_t id, int64_t end) {
  auto it = open_.find(id);
  if (it == open_.end()) {
    return;
  }
  spans_[it->second].end = end;
  open_.erase(it);
}

void Tracer::Annotate(uint64_t id, std::string key, std::string value) {
  // Ids are dense and record-ordered, so id i lives at spans_[i - 1]. This
  // works for closed spans too (RecordSpan + Annotate is a common pair).
  if (id == 0 || id >= next_id_) {
    return;
  }
  spans_[id - 1].annotations.emplace_back(std::move(key), std::move(value));
}

uint64_t Tracer::RecordSpan(std::string name, int64_t start, int64_t end,
                            uint32_t node, uint64_t parent, uint64_t trace_id) {
  Span* s = Alloc(std::move(name), start, node, parent, trace_id);
  if (s == nullptr) {
    return 0;
  }
  s->end = end;
  return s->id;
}

void Tracer::Clear() {
  spans_.clear();
  open_.clear();
  next_id_ = 1;
  dropped_ = 0;
}

JsonValue Tracer::SpansJson() const {
  JsonValue out = JsonValue::Array();
  for (const Span& s : spans_) {
    out.Append(s.ToJson());
  }
  return out;
}

JsonValue Tracer::ToJson() const {
  JsonValue out = JsonValue::Object();
  out.Set("spans", SpansJson());
  out.Set("dropped", dropped_);
  return out;
}

}  // namespace past
