#include "src/obs/route_trace.h"

namespace past {

const char* RouteRuleName(RouteRule rule) {
  switch (rule) {
    case RouteRule::kLeafSet:
      return "leaf_set";
    case RouteRule::kRoutingTable:
      return "routing_table";
    case RouteRule::kRareCase:
      return "rare_case";
    case RouteRule::kReplicaShortcut:
      return "replica_shortcut";
  }
  return "?";
}

JsonValue RouteTrace::ToJson() const {
  JsonValue hop_list = JsonValue::Array();
  for (const RouteHop& h : hops) {
    JsonValue hop = JsonValue::Object();
    hop.Set("node", static_cast<uint64_t>(h.node));
    hop.Set("rule", RouteRuleName(h.rule));
    hop.Set("distance", h.distance);
    hop.Set("time_us", h.when);
    hop_list.Append(std::move(hop));
  }
  JsonValue out = JsonValue::Object();
  out.Set("trace_id", trace_id);
  out.Set("hops", std::move(hop_list));
  return out;
}

}  // namespace past
