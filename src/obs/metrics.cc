#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace past {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  PAST_CHECK_MSG(!bounds_.empty(), "histogram needs at least one bucket bound");
  PAST_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                     std::adjacent_find(bounds_.begin(), bounds_.end()) == bounds_.end(),
                 "histogram bounds must be strictly ascending");
  buckets_.assign(bounds_.size() + 1, 0);
}

void Histogram::Observe(double value) {
  if (!std::isfinite(value)) {
    // One NaN folded into sum_ would turn the whole run's mean into NaN;
    // count the rejection so the dump still shows something went wrong.
    ++invalid_;
    return;
  }
  size_t i = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin());
  ++buckets_[i];
  ++count_;
  sum_ += value;
}

void Histogram::MergeFrom(const Histogram& other) {
  PAST_CHECK_MSG(bounds_ == other.bounds_,
                 "merging histograms with different bounds");
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  invalid_ += other.invalid_;
  sum_ += other.sum_;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  invalid_ = 0;
  sum_ = 0.0;
}

JsonValue Histogram::ToJson() const {
  JsonValue buckets = JsonValue::Array();
  for (size_t i = 0; i < bounds_.size(); ++i) {
    JsonValue b = JsonValue::Object();
    b.Set("le", bounds_[i]);
    b.Set("count", buckets_[i]);
    buckets.Append(std::move(b));
  }
  JsonValue overflow = JsonValue::Object();
  overflow.Set("le", "inf");
  overflow.Set("count", buckets_.back());
  buckets.Append(std::move(overflow));

  JsonValue out = JsonValue::Object();
  out.Set("count", count_);
  out.Set("invalid", invalid_);
  out.Set("sum", sum_);
  out.Set("mean", mean());
  out.Set("buckets", std::move(buckets));
  return out;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::vector<double> bounds) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return it->second.get();
}

LogHistogram* MetricsRegistry::GetLogHistogram(std::string_view name,
                                               int sub_buckets) {
  auto it = log_histograms_.find(name);
  if (it == log_histograms_.end()) {
    it = log_histograms_
             .emplace(std::string(name), std::make_unique<LogHistogram>(sub_buckets))
             .first;
  }
  return it->second.get();
}

const Counter* MetricsRegistry::FindCounter(std::string_view name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::FindGauge(std::string_view name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::FindHistogram(std::string_view name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

const LogHistogram* MetricsRegistry::FindLogHistogram(std::string_view name) const {
  auto it = log_histograms_.find(name);
  return it == log_histograms_.end() ? nullptr : it->second.get();
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) {
    GetCounter(name)->MergeFrom(*c);
  }
  for (const auto& [name, g] : other.gauges_) {
    GetGauge(name)->MergeFrom(*g);
  }
  for (const auto& [name, h] : other.histograms_) {
    GetHistogram(name, h->bounds())->MergeFrom(*h);
  }
  for (const auto& [name, h] : other.log_histograms_) {
    GetLogHistogram(name, h->sub_buckets())->MergeFrom(*h);
  }
}

void MetricsRegistry::ResetAll() {
  for (auto& [name, c] : counters_) {
    c->Reset();
  }
  for (auto& [name, g] : gauges_) {
    g->Reset();
  }
  for (auto& [name, h] : histograms_) {
    h->Reset();
  }
  for (auto& [name, h] : log_histograms_) {
    h->Reset();
  }
}

JsonValue MetricsRegistry::ToJson() const {
  JsonValue counters = JsonValue::Object();
  for (const auto& [name, c] : counters_) {
    counters.Set(name, c->value());
  }
  JsonValue gauges = JsonValue::Object();
  for (const auto& [name, g] : gauges_) {
    gauges.Set(name, g->value());
  }
  JsonValue histograms = JsonValue::Object();
  for (const auto& [name, h] : histograms_) {
    histograms.Set(name, h->ToJson());
  }
  JsonValue log_histograms = JsonValue::Object();
  for (const auto& [name, h] : log_histograms_) {
    log_histograms.Set(name, h->ToJson());
  }
  JsonValue out = JsonValue::Object();
  out.Set("counters", std::move(counters));
  out.Set("gauges", std::move(gauges));
  out.Set("histograms", std::move(histograms));
  out.Set("log_histograms", std::move(log_histograms));
  return out;
}

}  // namespace past
