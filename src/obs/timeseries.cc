#include "src/obs/timeseries.h"

#include <utility>

#include "src/common/check.h"
#include "src/obs/log_histogram.h"

namespace past {

TimeSeriesSampler::TimeSeriesSampler(const MetricsRegistry* metrics,
                                     int64_t interval_us)
    : metrics_(metrics), interval_us_(interval_us) {
  PAST_CHECK(metrics != nullptr);
  PAST_CHECK_MSG(interval_us > 0, "sampling interval must be positive");
}

void TimeSeriesSampler::Track(std::string name) {
  names_.push_back(std::move(name));
}

void TimeSeriesSampler::Sample(int64_t now) {
  JsonValue row = JsonValue::Object();
  row.Set("t_us", now);
  for (const std::string& name : names_) {
    if (const Counter* c = metrics_->FindCounter(name)) {
      row.Set(name, c->value());
    } else if (const Gauge* g = metrics_->FindGauge(name)) {
      row.Set(name, g->value());
    } else if (const LogHistogram* h = metrics_->FindLogHistogram(name)) {
      JsonValue q = JsonValue::Object();
      q.Set("count", h->count());
      q.Set("p50", h->p50());
      q.Set("p99", h->p99());
      row.Set(name, std::move(q));
    } else {
      row.Set(name, JsonValue());
    }
  }
  rows_.push_back(std::move(row));
}

JsonValue TimeSeriesSampler::ToJson() const {
  JsonValue out = JsonValue::Array();
  for (const JsonValue& row : rows_) {
    out.Append(row);
  }
  return out;
}

}  // namespace past
