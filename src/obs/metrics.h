// MetricsRegistry — named counters, gauges, and fixed-bucket histograms.
//
// The registry is the uniform instrumentation layer every subsystem reports
// through: the simulated network, the Pastry protocol engine, and the PAST
// storage layer all register metrics here, and the experiment drivers dump
// one JSON document per run. Design constraints:
//
//  * Cheap enough to stay on in every run. Instruments are registered once
//    (a map lookup) and callers hold raw pointers; the hot-path operations
//    (Counter::Inc, Histogram::Observe) are a few arithmetic instructions
//    with no locks or allocation. The simulator is single-threaded, so no
//    atomics either.
//  * Stable identity. Instrument pointers remain valid for the registry's
//    lifetime; re-registering a name returns the existing instrument, so
//    many nodes on one network share (and sum into) the same metric.
//  * Machine readable. DumpJson() emits {counters, gauges, histograms} with
//    names sorted for deterministic diffs.
//
// Naming convention (see DESIGN.md "Observability"): dotted lowercase paths,
// "<layer>.<metric>" — e.g. "net.sent", "pastry.route.hops", "cache.hits".
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/obs/json.h"
#include "src/obs/log_histogram.h"

namespace past {

class Counter {
 public:
  void Inc(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }
  // Streaming aggregation: fold a shard's count into this one.
  void MergeFrom(const Counter& other) { value_ += other.value_; }

 private:
  uint64_t value_ = 0;
};

// A last-written value that also supports relative updates, so instruments
// shared by many nodes can track an aggregate (e.g. total bytes stored).
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  void Add(double delta) { value_ += delta; }
  void Sub(double delta) { value_ -= delta; }
  double value() const { return value_; }
  void Reset() { value_ = 0.0; }
  // Streaming aggregation. Gauges shared across shards carry aggregate
  // semantics (totals), so merging sums; point-in-time gauges should be
  // re-sampled after a merge instead.
  void MergeFrom(const Gauge& other) { value_ += other.value_; }

 private:
  double value_ = 0.0;
};

// Incremental scalar statistics: count/mean/min/max/stddev in O(1) space via
// Welford's algorithm, mergeable across shards (Chan et al.'s parallel
// update). The cheap companion to a histogram when quantiles aren't needed —
// experiment drivers stream per-trial values through one of these instead of
// buffering them.
class RunningStat {
 public:
  void Observe(double value) {
    ++count_;
    if (count_ == 1) {
      mean_ = value;
      m2_ = 0.0;
      min_ = value;
      max_ = value;
      return;
    }
    const double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (value - mean_);
    if (value < min_) {
      min_ = value;
    }
    if (value > max_) {
      max_ = value;
    }
  }

  void MergeFrom(const RunningStat& other) {
    if (other.count_ == 0) {
      return;
    }
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double n = na + nb;
    mean_ += delta * nb / n;
    m2_ += other.m2_ + delta * delta * na * nb / n;
    count_ += other.count_;
    if (other.min_ < min_) {
      min_ = other.min_;
    }
    if (other.max_ > max_) {
      max_ = other.max_;
    }
  }

  uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }
  // Population variance/stddev (n, not n-1): 0 for fewer than two samples.
  double variance() const {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_);
  }
  double stddev() const;

  void Reset() { *this = RunningStat{}; }

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;  // sum of squared deviations from the running mean
  double min_ = 0.0;
  double max_ = 0.0;
};

// Fixed upper-bound buckets plus an implicit overflow bucket; also tracks
// count and sum so dumps can report means. A sample lands in the first
// bucket whose bound is >= the value (bounds are inclusive upper edges).
// Non-finite samples (NaN, +/-inf) would poison `sum` — and through it the
// mean of the whole run — so they are rejected into the `invalid` counter
// instead of being observed.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  uint64_t count() const { return count_; }
  uint64_t invalid() const { return invalid_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  const std::vector<double>& bounds() const { return bounds_; }
  // buckets()[i] counts samples <= bounds()[i] (cumulative-free, per bucket);
  // buckets().back() is the overflow bucket (> bounds().back()).
  const std::vector<uint64_t>& buckets() const { return buckets_; }
  void Reset();

  // Folds `other`'s samples in; both histograms must share identical bounds.
  void MergeFrom(const Histogram& other);

  JsonValue ToJson() const;

 private:
  std::vector<double> bounds_;    // ascending upper edges
  std::vector<uint64_t> buckets_; // bounds_.size() + 1 (overflow last)
  uint64_t count_ = 0;
  uint64_t invalid_ = 0;          // rejected non-finite samples
  double sum_ = 0.0;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Idempotent: returns the existing instrument when the name is already
  // registered. Pointers stay valid for the registry's lifetime.
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  // An existing histogram keeps its original bounds; `bounds` must be
  // non-empty and strictly ascending.
  Histogram* GetHistogram(std::string_view name, std::vector<double> bounds);
  // Log-bucketed quantile histogram; an existing one keeps its original
  // sub-bucket resolution.
  LogHistogram* GetLogHistogram(std::string_view name,
                                int sub_buckets = LogHistogram::kDefaultSubBuckets);

  // Lookup without creation; nullptr when absent.
  const Counter* FindCounter(std::string_view name) const;
  const Gauge* FindGauge(std::string_view name) const;
  const Histogram* FindHistogram(std::string_view name) const;
  const LogHistogram* FindLogHistogram(std::string_view name) const;

  // Zeroes every instrument (registrations survive; pointers stay valid).
  void ResetAll();

  // Folds every instrument of `other` into this registry, registering names
  // this registry lacks (histogram bounds/resolution are adopted from
  // `other`; name collisions with mismatched shapes are a programming error).
  // This is how sharded trial runners aggregate: each shard records into a
  // private registry, the committer merges in deterministic shard order.
  void MergeFrom(const MetricsRegistry& other);

  // {"counters": {...}, "gauges": {...}, "histograms": {...},
  //  "log_histograms": {...}}, names sorted.
  JsonValue ToJson() const;
  std::string DumpJson(int indent = 2) const { return ToJson().Dump(indent); }

 private:
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::unique_ptr<LogHistogram>, std::less<>> log_histograms_;
};

}  // namespace past

