// Per-message route traces.
//
// Every routed Pastry message carries its trace: one record per overlay hop,
// written by the node that made the forwarding decision. A record names the
// decider, which routing rule chose the next hop (leaf set, routing table,
// the rare-case fallback, or the replica-set proximity shortcut), and the
// proximity distance of the hop taken. The trace is surfaced to applications
// through DeliverContext, so experiments and tests can assert not just
// "<= log N hops" but *which rule* produced each hop.
#pragma once

#include <cstdint>
#include <vector>

#include "src/obs/json.h"

namespace past {

// Which routing rule selected the next hop (Pastry Section 2.1 terminology).
enum class RouteRule : uint8_t {
  kLeafSet = 0,          // destination within the leaf set's coverage
  kRoutingTable = 1,     // prefix-matching routing-table entry
  kRareCase = 2,         // fallback scan over all known nodes
  kReplicaShortcut = 3,  // final-hop jump to the proximally closest replica
};
constexpr uint8_t kRouteRuleCount = 4;

const char* RouteRuleName(RouteRule rule);

struct RouteHop {
  uint32_t node = 0;       // NodeAddr of the node that chose this hop
  RouteRule rule = RouteRule::kLeafSet;
  double distance = 0.0;   // proximity distance of the hop taken
  int64_t when = 0;        // sim-time (us) the hop was taken, stamped by the
                           // decider — aligns hop traces with span timelines

  bool operator==(const RouteHop& o) const {
    return node == o.node && rule == o.rule && distance == o.distance &&
           when == o.when;
  }
};

struct RouteTrace {
  uint64_t trace_id = 0;        // the message seq: unique per (source, message)
  std::vector<RouteHop> hops;   // one record per overlay hop, in order

  // [{"node": .., "rule": "leaf_set", "distance": .., "time_us": ..}, ...]
  // wrapped with the trace id: {"trace_id": .., "hops": [...]}.
  JsonValue ToJson() const;
};

}  // namespace past

