// Minimal JSON document model for the observability layer.
//
// JsonValue is a tree of null/bool/number/string/array/object nodes. Object
// members keep insertion order, so dumps are deterministic and diffable.
// Dump() produces standards-compliant JSON; Parse() is a strict recursive-
// descent reader used by the experiment smoke tests to validate their own
// output. Not a general-purpose library: no streaming, documents are assumed
// to fit comfortably in memory.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace past {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}
  JsonValue(bool v) : type_(Type::kBool), bool_(v) {}           // NOLINT
  JsonValue(double v) : type_(Type::kNumber), num_(v) {}        // NOLINT
  JsonValue(int v) : JsonValue(static_cast<double>(v)) {}       // NOLINT
  JsonValue(int64_t v) : JsonValue(static_cast<double>(v)) {}   // NOLINT
  JsonValue(uint64_t v) : JsonValue(static_cast<double>(v)) {}  // NOLINT
  JsonValue(std::string v) : type_(Type::kString), str_(std::move(v)) {}  // NOLINT
  JsonValue(const char* v) : JsonValue(std::string(v)) {}       // NOLINT

  static JsonValue Array() {
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_string() const { return type_ == Type::kString; }

  bool AsBool() const { return bool_; }
  double AsDouble() const { return num_; }
  const std::string& AsString() const { return str_; }

  // --- object ----------------------------------------------------------------
  // Adds or replaces a member. Returns *this so builders can chain.
  JsonValue& Set(std::string key, JsonValue value);
  // Member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  // Walks a '/'-separated member path ("metrics/counters/net.sent"); '/' is
  // the separator because metric names themselves contain dots.
  const JsonValue* FindPath(std::string_view path) const;

  // --- array -----------------------------------------------------------------
  void Append(JsonValue value);
  size_t size() const { return items_.size(); }
  const JsonValue& at(size_t i) const { return items_[i]; }
  const std::vector<JsonValue>& items() const { return items_; }

  // --- serialization ----------------------------------------------------------
  // indent == 0: compact one-liner; indent > 0: pretty-printed.
  std::string Dump(int indent = 0) const;

  // Strict parse of a complete document. Returns false (and leaves *out
  // unspecified) on any syntax error or trailing garbage.
  [[nodiscard]] static bool Parse(std::string_view text, JsonValue* out);

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<JsonValue> items_;                           // kArray
  std::vector<std::pair<std::string, JsonValue>> members_; // kObject
};

}  // namespace past

