// TimeSeriesSampler — periodic snapshots of selected instruments.
//
// End-state metric dumps cannot show how a churn or failure experiment
// *evolved*; this sampler records a row of selected instrument values at a
// fixed sim-time interval, producing the "timeseries" array experiments
// embed in their JSON output. Tracked names resolve against the registry at
// sample time (counter, gauge, or log-histogram — whichever matches), so a
// sampler can be armed before the layer that registers the instrument.
//
// Scheduling is templated on the queue type rather than depending on
// src/sim, keeping the obs -> sim layering acyclic: Start(q) arms a
// self-rescheduling timer via q->After() and Stop(q) cancels it. Stop before
// draining a queue with RunAll(), or the sampler reschedules forever.
// Sampling on the virtual clock is deterministic by construction.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/json.h"
#include "src/obs/metrics.h"

namespace past {

class TimeSeriesSampler {
 public:
  TimeSeriesSampler(const MetricsRegistry* metrics, int64_t interval_us);

  // Adds an instrument to every future row (insertion order is row order).
  void Track(std::string name);

  // Records one row at time `now`. Counters and gauges emit their scalar
  // value; log-histograms emit {"count", "p50", "p99"}; unresolved names
  // emit null (the column stays, so rows are structurally uniform).
  void Sample(int64_t now);

  template <typename Queue>
  void Start(Queue* queue) {
    running_ = true;
    Arm(queue);
  }

  template <typename Queue>
  void Stop(Queue* queue) {
    running_ = false;
    if (timer_ != 0) {
      queue->Cancel(timer_);
      timer_ = 0;
    }
  }

  int64_t interval_us() const { return interval_us_; }
  size_t rows() const { return rows_.size(); }

  // The "timeseries" array: [{"t_us": .., "<name>": ..}, ...].
  JsonValue ToJson() const;

 private:
  template <typename Queue>
  void Arm(Queue* queue) {
    timer_ = queue->After(interval_us_, [this, queue] {
      timer_ = 0;
      if (!running_) {
        return;
      }
      Sample(queue->Now());
      Arm(queue);
    });
  }

  const MetricsRegistry* metrics_;
  int64_t interval_us_;
  std::vector<std::string> names_;
  std::vector<JsonValue> rows_;
  bool running_ = false;
  uint64_t timer_ = 0;
};

}  // namespace past
