#include "src/obs/log_histogram.h"

#include <cmath>

#include "src/common/check.h"

namespace past {

namespace {

// Floor division for the signed linear index -> (octave, sub) split.
inline int FloorDiv(int a, int b) {
  int q = a / b;
  return (a % b != 0 && (a < 0) != (b < 0)) ? q - 1 : q;
}

}  // namespace

LogHistogram::LogHistogram(int sub_buckets) : sub_buckets_(sub_buckets) {
  PAST_CHECK_MSG(sub_buckets >= 1, "LogHistogram needs at least one sub-bucket");
}

int LogHistogram::IndexOf(double value) const {
  int exp = 0;
  double frac = std::frexp(value, &exp);  // value = frac * 2^exp, frac in [0.5, 1)
  int sub = static_cast<int>((frac - 0.5) * 2.0 * static_cast<double>(sub_buckets_));
  if (sub < 0) {
    sub = 0;
  } else if (sub >= sub_buckets_) {
    sub = sub_buckets_ - 1;
  }
  return exp * sub_buckets_ + sub;
}

double LogHistogram::BucketLow(int index) const {
  int exp = FloorDiv(index, sub_buckets_);
  int sub = index - exp * sub_buckets_;
  double n = static_cast<double>(sub_buckets_);
  return std::ldexp(1.0 + static_cast<double>(sub) / n, exp - 1);
}

double LogHistogram::BucketMid(int index) const {
  int exp = FloorDiv(index, sub_buckets_);
  int sub = index - exp * sub_buckets_;
  double n = static_cast<double>(sub_buckets_);
  // low + half the bucket width, both exactly representable scalings.
  return std::ldexp(1.0 + (static_cast<double>(sub) + 0.5) / n, exp - 1);
}

void LogHistogram::Observe(double value) {
  if (!std::isfinite(value) || value < 0.0) {
    ++invalid_;
    return;
  }
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    if (value < min_) {
      min_ = value;
    }
    if (value > max_) {
      max_ = value;
    }
  }
  ++count_;
  sum_ += value;
  if (value == 0.0) {
    ++zero_count_;
    return;
  }
  int index = IndexOf(value);
  if (buckets_.empty()) {
    base_ = index;
    buckets_.push_back(0);
  } else if (index < base_) {
    buckets_.insert(buckets_.begin(), static_cast<size_t>(base_ - index), 0);
    base_ = index;
  } else if (index >= base_ + static_cast<int>(buckets_.size())) {
    buckets_.resize(static_cast<size_t>(index - base_) + 1, 0);
  }
  ++buckets_[static_cast<size_t>(index - base_)];
}

double LogHistogram::Quantile(double q) const {
  if (count_ == 0) {
    return 0.0;
  }
  if (q < 0.0) {
    q = 0.0;
  } else if (q > 1.0) {
    q = 1.0;
  }
  // Nearest-rank: the sample at 1-based sorted position ceil(q * count).
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  if (rank < 1) {
    rank = 1;
  }
  if (rank > count_) {
    rank = count_;
  }
  double estimate = 0.0;
  if (rank <= zero_count_) {
    estimate = 0.0;
  } else {
    uint64_t seen = zero_count_;
    estimate = max_;  // fallback; the loop always resolves before running off
    for (size_t i = 0; i < buckets_.size(); ++i) {
      seen += buckets_[i];
      if (seen >= rank) {
        estimate = BucketMid(base_ + static_cast<int>(i));
        break;
      }
    }
  }
  // The exact extremes are tracked, so clamping can only reduce error.
  if (estimate < min_) {
    estimate = min_;
  }
  if (estimate > max_) {
    estimate = max_;
  }
  return estimate;
}

void LogHistogram::MergeFrom(const LogHistogram& other) {
  PAST_CHECK_MSG(sub_buckets_ == other.sub_buckets_,
                 "merging LogHistograms of different resolutions");
  invalid_ += other.invalid_;
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    if (other.min_ < min_) {
      min_ = other.min_;
    }
    if (other.max_ > max_) {
      max_ = other.max_;
    }
  }
  count_ += other.count_;
  zero_count_ += other.zero_count_;
  sum_ += other.sum_;
  if (other.buckets_.empty()) {
    return;
  }
  // Grow this window to cover other's [base, base + size), then add.
  const int other_end = other.base_ + static_cast<int>(other.buckets_.size());
  if (buckets_.empty()) {
    base_ = other.base_;
    buckets_.assign(other.buckets_.size(), 0);
  } else {
    if (other.base_ < base_) {
      buckets_.insert(buckets_.begin(), static_cast<size_t>(base_ - other.base_), 0);
      base_ = other.base_;
    }
    if (other_end > base_ + static_cast<int>(buckets_.size())) {
      buckets_.resize(static_cast<size_t>(other_end - base_), 0);
    }
  }
  for (size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[static_cast<size_t>(other.base_ - base_) + i] += other.buckets_[i];
  }
}

void LogHistogram::Reset() {
  buckets_.clear();
  base_ = 0;
  count_ = 0;
  zero_count_ = 0;
  invalid_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

JsonValue LogHistogram::ToJson() const {
  JsonValue buckets = JsonValue::Array();
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) {
      continue;
    }
    int index = base_ + static_cast<int>(i);
    JsonValue b = JsonValue::Object();
    b.Set("idx", index);
    b.Set("low", BucketLow(index));
    b.Set("count", buckets_[i]);
    buckets.Append(std::move(b));
  }
  JsonValue out = JsonValue::Object();
  out.Set("count", count_);
  out.Set("invalid", invalid_);
  out.Set("zero", zero_count_);
  out.Set("sum", sum_);
  out.Set("mean", mean());
  out.Set("min", min());
  out.Set("max", max());
  out.Set("relative_error", relative_error());
  out.Set("p50", p50());
  out.Set("p90", p90());
  out.Set("p99", p99());
  out.Set("p999", p999());
  out.Set("buckets", std::move(buckets));
  return out;
}

}  // namespace past
