// SocketTransport — the real-network Transport backend.
//
// One endpoint per process, single-threaded. The transport binds a UDP
// socket and a TCP listener on the same port and splits traffic by size:
// control and routing messages (at most `udp_max_payload` bytes of payload)
// travel as single UDP datagrams, while bulk payloads — PAST file contents —
// stream over cached per-peer TCP connections with length-prefixed framing
// (src/net/frame.h). The split is invisible above the Transport interface.
//
// Event loop. Everything happens on the thread that calls PollOnce()/Run():
// socket readiness via poll(2), timer dispatch via the transport's
// EventQueue driven from CLOCK_MONOTONIC (microseconds since Open()), and
// message delivery via NetReceiver::OnMessage. Embedders hook extra fds
// (e.g. the daemon's control server) into the same loop with WatchFd().
//
// TCP connection management. Outbound connections are cached per peer and
// created lazily on first bulk send; frames queue while the non-blocking
// connect resolves. A per-peer send queue is capped at
// `max_peer_queue_bytes` — beyond that new frames are dropped and counted
// (`net.sock.dropped_backpressure`), honoring Transport's lossy fire-and-
// forget contract instead of buffering without bound. Any socket error
// drops the connection and its queue; the next send dials a fresh
// connection. Inbound connections are identified by the first frame's
// `from` field, and every later frame must carry the same identity or the
// connection is dropped.
//
// Hardening. Every received datagram/stream segment passes the frame
// decoder's checks (magic, version, length cap, CRC) before any byte
// reaches protocol code; frames not addressed to this endpoint are dropped.
// Decode failures on a TCP stream kill the connection (a length-prefixed
// stream cannot resync).
#pragma once

#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/net/frame.h"
#include "src/net/socket_util.h"
#include "src/net/transport.h"
#include "src/obs/span.h"
#include "src/sim/event_queue.h"
#include "src/sim/timer_wheel.h"

namespace past {

struct SocketTransportOptions {
  // The cluster's shared host table; NodeAddr packs (host_index << 16) |
  // port against it. Every process in a cluster must use the same table.
  // The default single-entry table makes addr == port on localhost.
  std::vector<std::string> hosts = {"127.0.0.1"};
  uint16_t host_index = 0;

  // Port for both the UDP socket and the TCP listener. 0 picks an ephemeral
  // port (retrying until UDP and TCP agree on one), reported by port().
  uint16_t port = 0;

  // Payloads at most this large go over UDP; larger ones stream over TCP.
  // Kept under typical path MTU so control datagrams never fragment.
  size_t udp_max_payload = 1200;

  // Decode-side cap on a frame's payload; bigger inbound frames are treated
  // as hostile. Sends above the cap are dropped (net.sock.dropped_oversize).
  size_t max_frame_bytes = 64u << 20;

  // Cap on one peer's queued-but-unsent TCP bytes (backpressure bound).
  size_t max_peer_queue_bytes = 16u << 20;
};

class SocketTransport : public Transport {
 public:
  explicit SocketTransport(SocketTransportOptions options = {});
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  // Binds the UDP socket and TCP listener. Must succeed before Register().
  StatusCode Open();
  void Close();

  // The port actually bound (== options.port unless it was 0).
  uint16_t port() const { return port_; }
  NodeAddr local_addr() const { return local_addr_; }

  // --- event loop -----------------------------------------------------------

  // One poll(2) round: waits at most `timeout_ms` (-1 = until a timer or fd
  // event), then dispatches due timers, socket I/O, and watched fds.
  // Returns kOk, or kUnavailable after Close().
  StatusCode PollOnce(int timeout_ms);

  // PollOnce until Stop() is called (from a timer or delivery callback).
  void Run();
  void Stop() { running_ = false; }

  // Hooks an external fd into the loop. `events` is a poll(2) mask (POLLIN
  // etc.); the callback runs with the fired revents. One watcher per fd.
  using FdCallback = std::function<void(int fd, short revents)>;
  void WatchFd(int fd, short events, FdCallback cb);
  void UnwatchFd(int fd);

  // --- Transport ------------------------------------------------------------

  NodeAddr Register(NetReceiver* receiver) override;
  void Send(NodeAddr from, NodeAddr to, SharedBytes wire) override;
  using Transport::Send;
  double Proximity(NodeAddr a, NodeAddr b) const override;
  void SetUp(NodeAddr addr, bool up) override;
  bool IsUp(NodeAddr addr) const override;
  EventQueue* queue() override { return &queue_; }
  TimerWheel* wheel() override { return &wheel_; }
  MetricsRegistry& metrics() override { return metrics_; }
  Tracer& tracer() override { return tracer_; }

 private:
  // One TCP connection, inbound or outbound. Outbound conns know their peer
  // from the dial; inbound conns learn it from the first frame.
  struct Conn {
    int fd = -1;
    NodeAddr peer = kInvalidAddr;
    bool outbound = false;
    bool connecting = false;       // non-blocking connect still resolving
    int64_t connect_started = 0;   // for the RTT estimate
    FrameReader reader{0};
    // Send queue: each frame is a 24-byte owned header plus a shared handle
    // on the payload (zero-copy — a bulk payload fanned out to k replicas
    // queues one allocation k times).
    struct OutBuf {
      Bytes header;
      SharedBytes payload;
    };
    std::deque<OutBuf> sendq;
    size_t sendq_bytes = 0;   // unsent bytes across the queue
    size_t sent_prefix = 0;   // bytes of sendq.front() already written
  };

  int64_t WallMicros() const;  // CLOCK_MONOTONIC relative to Open()
  void AdvanceClock();

  void SendTcp(NodeAddr to, SharedBytes wire);
  void FlushConn(Conn* conn);
  void DropConn(int fd);
  void AcceptPending();
  void ReadUdp();
  void ReadConn(Conn* conn);
  void DeliverFrame(const FrameHeader& header, ByteSpan payload);
  void RecordRtt(NodeAddr peer, int64_t micros);

  SocketTransportOptions options_;
  EventQueue queue_;
  // Maintenance timers batch into 1 ms wall-clock buckets; PollOnce already
  // dispatches the queue with millisecond poll(2) resolution.
  TimerWheel wheel_{&queue_, 1000};
  MetricsRegistry metrics_;
  Tracer tracer_;

  NetReceiver* receiver_ = nullptr;
  NodeAddr local_addr_ = kInvalidAddr;
  uint16_t port_ = 0;
  int udp_fd_ = -1;
  int listen_fd_ = -1;
  bool up_ = true;       // local endpoint up/down (Fail/Recover)
  bool running_ = false;
  int64_t epoch_ = 0;    // CLOCK_MONOTONIC at Open(), microseconds

  std::unordered_map<int, Conn> conns_;           // by fd
  std::unordered_map<NodeAddr, int> outbound_;    // peer -> dialed fd
  std::unordered_map<NodeAddr, double> rtt_ewma_; // microseconds

  struct Watcher {
    short events;
    FdCallback cb;
  };
  std::unordered_map<int, Watcher> watchers_;

  struct Instruments {
    Counter* udp_tx;
    Counter* udp_rx;
    Counter* tcp_tx;
    Counter* tcp_rx;
    Counter* bytes_tx;
    Counter* bytes_rx;
    Counter* conns_dialed;
    Counter* conns_accepted;
    Counter* conns_dropped;
    Counter* dropped_oversize;
    Counter* dropped_backpressure;
    Counter* dropped_decode;
    Counter* dropped_misaddressed;
    Counter* dropped_down;
  };
  Instruments obs_{};
};

}  // namespace past
