#include "src/net/frame.h"

#include <cstring>

#include "src/common/crc32c.h"

namespace past {
namespace {

inline void PutU32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

inline uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
}

}  // namespace

const char* FrameErrorName(FrameError e) {
  switch (e) {
    case FrameError::kNone:
      return "none";
    case FrameError::kNeedMore:
      return "need-more";
    case FrameError::kBadMagic:
      return "bad-magic";
    case FrameError::kBadVersion:
      return "bad-version";
    case FrameError::kBadKind:
      return "bad-kind";
    case FrameError::kBadReserved:
      return "bad-reserved";
    case FrameError::kTooLarge:
      return "too-large";
    case FrameError::kBadCrc:
      return "bad-crc";
    case FrameError::kTrailingBytes:
      return "trailing-bytes";
  }
  return "unknown";
}

void EncodeFrameHeader(NodeAddr from, NodeAddr to, ByteSpan payload,
                       uint8_t out[kFrameHeaderSize]) {
  PutU32(out, kFrameMagic);
  out[4] = kFrameVersion;
  out[5] = kFrameKindMessage;
  out[6] = 0;
  out[7] = 0;
  PutU32(out + 8, from);
  PutU32(out + 12, to);
  PutU32(out + 16, static_cast<uint32_t>(payload.size()));
  PutU32(out + 20, Crc32c(payload));
}

Bytes EncodeFrame(NodeAddr from, NodeAddr to, ByteSpan payload) {
  Bytes out(kFrameHeaderSize + payload.size());
  EncodeFrameHeader(from, to, payload, out.data());
  if (!payload.empty()) {
    std::memcpy(out.data() + kFrameHeaderSize, payload.data(), payload.size());
  }
  return out;
}

FrameError DecodeFrameHeader(ByteSpan data, size_t max_payload, FrameHeader* out) {
  if (data.size() < kFrameHeaderSize) {
    return FrameError::kNeedMore;
  }
  const uint8_t* p = data.data();
  // Identity fields are validated before the length is believed, so a
  // garbage or cross-protocol packet can never trigger a huge allocation.
  if (GetU32(p) != kFrameMagic) {
    return FrameError::kBadMagic;
  }
  if (p[4] != kFrameVersion) {
    return FrameError::kBadVersion;
  }
  if (p[5] != kFrameKindMessage) {
    return FrameError::kBadKind;
  }
  if (p[6] != 0 || p[7] != 0) {
    return FrameError::kBadReserved;
  }
  FrameHeader h;
  h.from = GetU32(p + 8);
  h.to = GetU32(p + 12);
  h.payload_len = GetU32(p + 16);
  h.payload_crc = GetU32(p + 20);
  if (h.payload_len > max_payload) {
    return FrameError::kTooLarge;
  }
  *out = h;
  return FrameError::kNone;
}

FrameError DecodeFrame(ByteSpan data, size_t max_payload, FrameHeader* header,
                       ByteSpan* payload) {
  FrameHeader h;
  FrameError err = DecodeFrameHeader(data, max_payload, &h);
  if (err != FrameError::kNone) {
    return err;
  }
  if (data.size() < kFrameHeaderSize + h.payload_len) {
    return FrameError::kNeedMore;
  }
  if (data.size() > kFrameHeaderSize + h.payload_len) {
    return FrameError::kTrailingBytes;
  }
  ByteSpan body(data.data() + kFrameHeaderSize, h.payload_len);
  if (Crc32c(body) != h.payload_crc) {
    return FrameError::kBadCrc;
  }
  *header = h;
  *payload = body;
  return FrameError::kNone;
}

void FrameReader::Append(ByteSpan data) {
  if (failed() || data.empty()) {
    return;
  }
  // Compact lazily: move the unconsumed tail down only once the dead prefix
  // dominates the buffer, so steady-state appends are O(bytes appended).
  if (pos_ > 4096 && pos_ > buf_.size() / 2) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data.data(), data.data() + data.size());
}

FrameError FrameReader::Next(FrameHeader* header, Bytes* payload) {
  if (failed()) {
    return error_;
  }
  ByteSpan avail(buf_.data() + pos_, buf_.size() - pos_);
  FrameHeader h;
  FrameError err = DecodeFrameHeader(avail, max_payload_, &h);
  if (err == FrameError::kNeedMore) {
    return err;
  }
  if (err != FrameError::kNone) {
    error_ = err;  // poisoned: a length-prefixed stream cannot resync
    return err;
  }
  if (avail.size() < kFrameHeaderSize + h.payload_len) {
    return FrameError::kNeedMore;
  }
  ByteSpan body(avail.data() + kFrameHeaderSize, h.payload_len);
  if (Crc32c(body) != h.payload_crc) {
    error_ = FrameError::kBadCrc;
    return error_;
  }
  payload->assign(body.data(), body.data() + body.size());
  *header = h;
  pos_ += kFrameHeaderSize + h.payload_len;
  if (pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  }
  return FrameError::kNone;
}

}  // namespace past
