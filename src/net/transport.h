// Transport — the overlay's view of a message network.
//
// PastryNode (and everything above it) programs against this interface
// instead of a concrete network, so the same protocol engine runs unchanged
// over the deterministic simulator (sim::Network, the first implementation)
// and over real sockets (SocketTransport in this directory). A Transport
// supplies four things:
//
//   * local address identity — Register() attaches the single message
//     receiver of an endpoint and returns its NodeAddr;
//   * message sends — fire-and-forget, possibly lossy, no delivery or
//     failure notification (the asymmetric-knowledge environment PAST
//     assumes: nodes "may silently leave the system without warning");
//   * timer scheduling — every backend owns an EventQueue. The simulator
//     drives it on virtual time; the socket backend drives it from the wall
//     clock inside its poll loop. Protocol code schedules timers and reads
//     Now() identically in both worlds;
//   * observability — a MetricsRegistry and Tracer shared by every layer
//     riding on the transport.
//
// NodeAddr is a 32-bit opaque endpoint identity that travels inside wire
// messages (NodeDescriptor). The simulator hands out dense indices; the
// socket backend packs (host_index << 16) | port against a shared host
// table (see socket_transport.h).
#pragma once

#include <cstdint>
#include <utility>

#include "src/common/bytes.h"
#include "src/common/shared_bytes.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/sim/event_queue.h"

namespace past {

class TimerWheel;

using NodeAddr = uint32_t;
constexpr NodeAddr kInvalidAddr = 0xffffffff;

class NetReceiver {
 public:
  virtual ~NetReceiver() = default;
  virtual void OnMessage(NodeAddr from, ByteSpan wire) = 0;
};

class Transport {
 public:
  virtual ~Transport() = default;

  // Attaches a receiver and returns its address — the endpoint's identity on
  // the wire. The simulator accepts any number of endpoints; a socket
  // transport is one endpoint per process and accepts exactly one.
  virtual NodeAddr Register(NetReceiver* receiver) = 0;

  // Queues `wire` for delivery to `to`. Zero-copy: implementations hold a
  // handle onto the caller's buffer, so sending one SharedBytes to many
  // recipients shares a single allocation. Sends may be silently lost; there
  // is no delivery notification.
  virtual void Send(NodeAddr from, NodeAddr to, SharedBytes wire) = 0;
  void Send(NodeAddr from, NodeAddr to, Bytes wire) {
    Send(from, to, SharedBytes(std::move(wire)));
  }

  // The scalar proximity metric between two endpoints. The simulator reads
  // its topology; the socket backend reports measured RTT (0.0 when it has
  // no sample yet). Larger is farther; only relative order matters to the
  // protocol's locality heuristics.
  virtual double Proximity(NodeAddr a, NodeAddr b) const = 0;

  // Endpoint liveness. The simulator implements a global oracle (churn
  // models flip it); a real transport can only switch its *own* endpoint
  // (Fail/Recover) and optimistically reports every remote peer as up —
  // failure knowledge comes from the protocol's own timeouts.
  virtual void SetUp(NodeAddr addr, bool up) = 0;
  virtual bool IsUp(NodeAddr addr) const = 0;

  // The timer engine. Protocol code schedules with After()/At(), cancels by
  // EventId, and reads Now() — microseconds of virtual time under the
  // simulator, microseconds since transport start under real sockets.
  virtual EventQueue* queue() = 0;

  // Coarse maintenance timers (keep-alives, retries). Backends that own a
  // TimerWheel (see sim/timer_wheel.h) return it so per-node periodic timers
  // coalesce into one queue event per wheel bucket; callers must fall back to
  // queue() when this returns null. Timer *firing times* are exact either
  // way — the wheel only batches heap events, it never rounds deadlines.
  virtual TimerWheel* wheel() { return nullptr; }

  // Shared observability: one registry/tracer per transport captures the
  // whole stack riding on it.
  virtual MetricsRegistry& metrics() = 0;
  virtual Tracer& tracer() = 0;
};

}  // namespace past
