#include "src/net/socket_transport.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>

#include "src/common/check.h"

namespace past {
namespace {

// The largest UDP datagram we are willing to receive: a frame header plus
// the largest payload the options allow over UDP, rounded up generously to
// a full 64 KB so a misconfigured sender is diagnosed by the decoder (with
// a counted drop) instead of silently truncated by the kernel.
constexpr size_t kUdpRecvBuf = 65536;
constexpr size_t kTcpReadChunk = 65536;
constexpr int kEphemeralPortAttempts = 32;

}  // namespace

SocketTransport::SocketTransport(SocketTransportOptions options)
    : options_(std::move(options)) {
  obs_.udp_tx = metrics_.GetCounter("net.sock.udp_tx");
  obs_.udp_rx = metrics_.GetCounter("net.sock.udp_rx");
  obs_.tcp_tx = metrics_.GetCounter("net.sock.tcp_tx");
  obs_.tcp_rx = metrics_.GetCounter("net.sock.tcp_rx");
  obs_.bytes_tx = metrics_.GetCounter("net.sock.bytes_tx");
  obs_.bytes_rx = metrics_.GetCounter("net.sock.bytes_rx");
  obs_.conns_dialed = metrics_.GetCounter("net.sock.conns_dialed");
  obs_.conns_accepted = metrics_.GetCounter("net.sock.conns_accepted");
  obs_.conns_dropped = metrics_.GetCounter("net.sock.conns_dropped");
  obs_.dropped_oversize = metrics_.GetCounter("net.sock.dropped_oversize");
  obs_.dropped_backpressure = metrics_.GetCounter("net.sock.dropped_backpressure");
  obs_.dropped_decode = metrics_.GetCounter("net.sock.dropped_decode");
  obs_.dropped_misaddressed = metrics_.GetCounter("net.sock.dropped_misaddressed");
  obs_.dropped_down = metrics_.GetCounter("net.sock.dropped_down");
}

SocketTransport::~SocketTransport() { Close(); }

int64_t SocketTransport::WallMicros() const {
  timespec ts;
  ::clock_gettime(CLOCK_MONOTONIC, &ts);  // lint:allow-nondeterminism — real transport runs on the wall clock
  return ts.tv_sec * 1000000 + ts.tv_nsec / 1000 - epoch_;
}

void SocketTransport::AdvanceClock() { queue_.RunUntil(WallMicros()); }

StatusCode SocketTransport::Open() {
  PAST_CHECK_MSG(udp_fd_ < 0, "SocketTransport::Open called twice");
  if (options_.host_index >= options_.hosts.size()) {
    return StatusCode::kInvalidArgument;
  }
  const std::string& host = options_.hosts[options_.host_index];
  // The UDP socket and the TCP listener must share one port number (the
  // NodeAddr encodes a single port). With an explicit port that either works
  // or fails; with port 0 we let UDP pick an ephemeral port and retry until
  // TCP can bind the same number.
  const int attempts = options_.port != 0 ? 1 : kEphemeralPortAttempts;
  for (int i = 0; i < attempts; ++i) {
    uint16_t port = options_.port;
    Result<int> udp = UdpBind(host, port, &port);
    if (!udp.ok()) {
      return udp.status();
    }
    Result<int> tcp = TcpListen(host, port, nullptr);
    if (tcp.ok()) {
      udp_fd_ = udp.value();
      listen_fd_ = tcp.value();
      port_ = port;
      timespec ts;
      ::clock_gettime(CLOCK_MONOTONIC, &ts);  // lint:allow-nondeterminism — clock epoch
      epoch_ = ts.tv_sec * 1000000 + ts.tv_nsec / 1000;
      return StatusCode::kOk;
    }
    ::close(udp.value());
  }
  return StatusCode::kUnavailable;
}

void SocketTransport::Close() {
  for (auto& [fd, conn] : conns_) {
    (void)conn;
    ::close(fd);
  }
  conns_.clear();
  outbound_.clear();
  if (udp_fd_ >= 0) {
    ::close(udp_fd_);
    udp_fd_ = -1;
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_ = false;
}

NodeAddr SocketTransport::Register(NetReceiver* receiver) {
  PAST_CHECK_MSG(udp_fd_ >= 0, "Register before Open");
  PAST_CHECK_MSG(receiver_ == nullptr,
                 "SocketTransport hosts exactly one endpoint per process");
  receiver_ = receiver;
  local_addr_ = MakeSockAddr(options_.host_index, port_);
  return local_addr_;
}

void SocketTransport::Send(NodeAddr from, NodeAddr to, SharedBytes wire) {
  (void)from;  // one endpoint per process: the sender is always local_addr_
  if (!up_ || receiver_ == nullptr) {
    obs_.dropped_down->Inc();
    return;
  }
  if (wire.size() > options_.max_frame_bytes) {
    obs_.dropped_oversize->Inc();
    return;
  }
  if (to == local_addr_) {
    // Loopback through the event queue, mirroring the simulator's
    // no-same-stack-delivery property.
    queue_.After(0, [this, wire = std::move(wire)] {
      if (receiver_ != nullptr && up_) {
        receiver_->OnMessage(local_addr_, wire.span());
      }
    });
    return;
  }
  if (SockAddrHostIndex(to) >= options_.hosts.size()) {
    obs_.dropped_misaddressed->Inc();
    return;
  }
  if (wire.size() > options_.udp_max_payload) {
    SendTcp(to, std::move(wire));
    return;
  }
  uint8_t header[kFrameHeaderSize];
  EncodeFrameHeader(local_addr_, to, wire.span(), header);
  sockaddr_in sa;
  if (ResolveIpv4(options_.hosts[SockAddrHostIndex(to)], SockAddrPort(to), &sa) !=
      StatusCode::kOk) {
    obs_.dropped_misaddressed->Inc();
    return;
  }
  iovec iov[2] = {{header, kFrameHeaderSize},
                  {const_cast<uint8_t*>(wire.data()), wire.size()}};
  msghdr msg = {};
  msg.msg_name = &sa;
  msg.msg_namelen = sizeof(sa);
  msg.msg_iov = iov;
  msg.msg_iovlen = wire.empty() ? 1 : 2;
  // Fire and forget: a full socket buffer or ICMP error is a lost message,
  // exactly the loss model the protocol already tolerates.
  if (::sendmsg(udp_fd_, &msg, 0) >= 0) {
    obs_.udp_tx->Inc();
    obs_.bytes_tx->Inc(kFrameHeaderSize + wire.size());
  }
}

void SocketTransport::SendTcp(NodeAddr to, SharedBytes wire) {
  int fd = -1;
  auto it = outbound_.find(to);
  if (it != outbound_.end()) {
    fd = it->second;
  } else {
    Result<int> dialed =
        TcpConnect(options_.hosts[SockAddrHostIndex(to)], SockAddrPort(to));
    if (!dialed.ok()) {
      obs_.conns_dropped->Inc();
      return;
    }
    fd = dialed.value();
    obs_.conns_dialed->Inc();
    Conn& conn = conns_[fd];
    conn.fd = fd;
    conn.peer = to;
    conn.outbound = true;
    conn.connecting = true;
    conn.connect_started = WallMicros();
    conn.reader = FrameReader(options_.max_frame_bytes);
    outbound_[to] = fd;
  }
  Conn& conn = conns_[fd];
  const size_t frame_bytes = kFrameHeaderSize + wire.size();
  if (conn.sendq_bytes + frame_bytes > options_.max_peer_queue_bytes) {
    obs_.dropped_backpressure->Inc();
    return;
  }
  Conn::OutBuf buf;
  buf.header.resize(kFrameHeaderSize);
  EncodeFrameHeader(local_addr_, to, wire.span(), buf.header.data());
  buf.payload = std::move(wire);
  conn.sendq.push_back(std::move(buf));
  conn.sendq_bytes += frame_bytes;
  obs_.tcp_tx->Inc();
  if (!conn.connecting) {
    FlushConn(&conn);
  }
}

void SocketTransport::FlushConn(Conn* conn) {
  while (!conn->sendq.empty()) {
    // Gather the unsent remainder of the front frame (header then payload).
    Conn::OutBuf& front = conn->sendq.front();
    iovec iov[2];
    int iovcnt = 0;
    size_t skip = conn->sent_prefix;
    if (skip < front.header.size()) {
      iov[iovcnt++] = {front.header.data() + skip, front.header.size() - skip};
      skip = 0;
    } else {
      skip -= front.header.size();
    }
    if (skip < front.payload.size()) {
      iov[iovcnt++] = {const_cast<uint8_t*>(front.payload.data()) + skip,
                       front.payload.size() - skip};
    }
    if (iovcnt == 0) {
      conn->sendq.pop_front();
      conn->sent_prefix = 0;
      continue;
    }
    ssize_t n = ::writev(conn->fd, iov, iovcnt);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
        return;  // socket full; poll will call back when writable
      }
      DropConn(conn->fd);
      return;
    }
    obs_.bytes_tx->Inc(static_cast<uint64_t>(n));
    conn->sent_prefix += static_cast<size_t>(n);
    conn->sendq_bytes -= static_cast<size_t>(n);
    const size_t frame_total = front.header.size() + front.payload.size();
    if (conn->sent_prefix >= frame_total) {
      conn->sent_prefix = 0;
      conn->sendq.pop_front();
    }
  }
}

void SocketTransport::DropConn(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) {
    return;
  }
  // The next bulk send to this peer dials a fresh connection; whatever was
  // queued here is lost, per the transport's lossy contract.
  if (it->second.outbound) {
    auto out = outbound_.find(it->second.peer);
    if (out != outbound_.end() && out->second == fd) {
      outbound_.erase(out);
    }
  }
  ::close(fd);
  conns_.erase(it);
  obs_.conns_dropped->Inc();
}

void SocketTransport::AcceptPending() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      return;  // EAGAIN or a transient error; poll will retry
    }
    if (SetNonBlocking(fd) != StatusCode::kOk) {
      ::close(fd);
      continue;
    }
    Conn& conn = conns_[fd];
    conn.fd = fd;
    conn.outbound = false;
    conn.reader = FrameReader(options_.max_frame_bytes);
    obs_.conns_accepted->Inc();
  }
}

void SocketTransport::ReadUdp() {
  uint8_t buf[kUdpRecvBuf];
  for (;;) {
    ssize_t n = ::recvfrom(udp_fd_, buf, sizeof(buf), 0, nullptr, nullptr);
    if (n < 0) {
      return;  // EAGAIN / transient
    }
    obs_.bytes_rx->Inc(static_cast<uint64_t>(n));
    FrameHeader header;
    ByteSpan payload;
    FrameError err = DecodeFrame(ByteSpan(buf, static_cast<size_t>(n)),
                                 options_.max_frame_bytes, &header, &payload);
    if (err != FrameError::kNone) {
      obs_.dropped_decode->Inc();
      continue;
    }
    obs_.udp_rx->Inc();
    DeliverFrame(header, payload);
  }
}

void SocketTransport::ReadConn(Conn* conn) {
  const int fd = conn->fd;
  uint8_t buf[kTcpReadChunk];
  bool eof = false;
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
        break;
      }
      DropConn(fd);
      return;
    }
    if (n == 0) {
      eof = true;
      break;
    }
    obs_.bytes_rx->Inc(static_cast<uint64_t>(n));
    conn->reader.Append(ByteSpan(buf, static_cast<size_t>(n)));
  }
  for (;;) {
    FrameHeader header;
    Bytes payload;
    FrameError err = conn->reader.Next(&header, &payload);
    if (err == FrameError::kNeedMore) {
      break;
    }
    if (err != FrameError::kNone) {
      obs_.dropped_decode->Inc();
      DropConn(fd);
      return;
    }
    // Pin the connection to the first frame's sender identity; an in-stream
    // identity change means a confused or hostile peer.
    if (conn->peer == kInvalidAddr) {
      conn->peer = header.from;
    } else if (header.from != conn->peer) {
      obs_.dropped_decode->Inc();
      DropConn(fd);
      return;
    }
    obs_.tcp_rx->Inc();
    DeliverFrame(header, payload);
    // Delivery runs protocol code which may drop this very connection;
    // re-check before touching it again.
    auto it = conns_.find(fd);
    if (it == conns_.end() || &it->second != conn) {
      return;
    }
  }
  if (eof) {
    DropConn(fd);
  }
}

void SocketTransport::DeliverFrame(const FrameHeader& header, ByteSpan payload) {
  if (header.to != local_addr_) {
    obs_.dropped_misaddressed->Inc();
    return;
  }
  if (receiver_ == nullptr || !up_) {
    obs_.dropped_down->Inc();
    return;
  }
  receiver_->OnMessage(header.from, payload);
}

void SocketTransport::RecordRtt(NodeAddr peer, int64_t micros) {
  double sample = static_cast<double>(micros);
  auto [it, inserted] = rtt_ewma_.emplace(peer, sample);
  if (!inserted) {
    it->second = 0.75 * it->second + 0.25 * sample;
  }
}

StatusCode SocketTransport::PollOnce(int timeout_ms) {
  if (udp_fd_ < 0) {
    return StatusCode::kUnavailable;
  }
  AdvanceClock();
  // Bound the wait by the next timer so queue events fire on time.
  SimTime next = queue_.NextDeadline();
  if (next != EventQueue::kNoDeadline) {
    SimTime delta = next - queue_.Now();
    int ms = delta <= 0 ? 0 : static_cast<int>(std::min<SimTime>(
                                  (delta + kMicrosPerMilli - 1) / kMicrosPerMilli,
                                  60 * 1000));
    timeout_ms = timeout_ms < 0 ? ms : std::min(timeout_ms, ms);
  }

  std::vector<pollfd> fds;
  fds.push_back({udp_fd_, POLLIN, 0});
  fds.push_back({listen_fd_, POLLIN, 0});
  for (auto& [fd, conn] : conns_) {
    short events = POLLIN;
    if (conn.connecting || !conn.sendq.empty()) {
      events |= POLLOUT;
    }
    fds.push_back({fd, events, 0});
  }
  for (auto& [fd, watcher] : watchers_) {
    fds.push_back({fd, watcher.events, 0});
  }

  int rc = ::poll(fds.data(), fds.size(), timeout_ms);
  AdvanceClock();
  if (rc < 0) {
    return errno == EINTR ? StatusCode::kOk : StatusCode::kInternal;
  }
  for (const pollfd& p : fds) {
    if (p.revents == 0) {
      continue;
    }
    if (p.fd == udp_fd_) {
      ReadUdp();
      continue;
    }
    if (p.fd == listen_fd_) {
      AcceptPending();
      continue;
    }
    auto watcher = watchers_.find(p.fd);
    if (watcher != watchers_.end()) {
      watcher->second.cb(p.fd, p.revents);
      continue;
    }
    auto it = conns_.find(p.fd);
    if (it == conns_.end()) {
      continue;  // dropped earlier in this round
    }
    Conn* conn = &it->second;
    if ((p.revents & POLLOUT) != 0 && conn->connecting) {
      if (ConnectResult(p.fd) != StatusCode::kOk) {
        DropConn(p.fd);
        continue;
      }
      conn->connecting = false;
      RecordRtt(conn->peer, WallMicros() - conn->connect_started);
      FlushConn(conn);
      it = conns_.find(p.fd);
      if (it == conns_.end()) {
        continue;
      }
      conn = &it->second;
    } else if ((p.revents & POLLOUT) != 0) {
      FlushConn(conn);
      it = conns_.find(p.fd);
      if (it == conns_.end()) {
        continue;
      }
      conn = &it->second;
    }
    if ((p.revents & (POLLIN | POLLHUP)) != 0) {
      ReadConn(conn);
      it = conns_.find(p.fd);
      if (it == conns_.end()) {
        continue;
      }
      conn = &it->second;
    }
    if ((p.revents & (POLLERR | POLLNVAL)) != 0) {
      DropConn(p.fd);
    }
  }
  return StatusCode::kOk;
}

void SocketTransport::Run() {
  running_ = true;
  while (running_ && udp_fd_ >= 0) {
    StatusCode code = PollOnce(-1);
    if (code != StatusCode::kOk) {
      break;
    }
  }
  running_ = false;
}

void SocketTransport::WatchFd(int fd, short events, FdCallback cb) {
  watchers_[fd] = Watcher{events, std::move(cb)};
}

void SocketTransport::UnwatchFd(int fd) { watchers_.erase(fd); }

double SocketTransport::Proximity(NodeAddr a, NodeAddr b) const {
  if (a == b) {
    return 0.0;
  }
  NodeAddr peer = a == local_addr_ ? b : (b == local_addr_ ? a : kInvalidAddr);
  if (peer == kInvalidAddr) {
    return 0.0;  // a real endpoint can only measure its own distances
  }
  auto it = rtt_ewma_.find(peer);
  return it != rtt_ewma_.end() ? it->second : 0.0;
}

void SocketTransport::SetUp(NodeAddr addr, bool up) {
  // Only the local endpoint can be switched; a real transport has no
  // authority over remote liveness.
  if (addr == local_addr_) {
    up_ = up;
  }
}

bool SocketTransport::IsUp(NodeAddr addr) const {
  if (addr == local_addr_) {
    return up_;
  }
  // Optimistic: remote failure knowledge comes from protocol timeouts.
  return true;
}

}  // namespace past
