// Wire framing for the socket transport.
//
// Every message that crosses a real socket — one UDP datagram for control
// traffic, or a slice of a TCP byte stream for bulk payloads — is a frame:
// a fixed 24-byte header followed by the Pastry wire message it carries.
//
//   offset  size  field
//   0       4     magic (the bytes "PSTF"; 0x46545350 as a little-endian u32)
//   4       1     version (kFrameVersion)
//   5       1     kind (0 = message; others reserved)
//   6       2     reserved, must be 0
//   8       4     from   (sender NodeAddr)
//   12      4     to     (destination NodeAddr)
//   16      4     payload length
//   20      4     CRC32C of the payload
//   24      n     payload (the Pastry wire message)
//
// Decoding is hardened against a hostile peer: magic/version/reserved are
// checked before the length is believed, the length is capped before any
// allocation, and the payload CRC is verified before delivery. On a TCP
// stream a header failure is fatal for the connection (there is no way to
// resynchronize a length-prefixed stream), which FrameReader reports as a
// hard error distinct from kNeedMore.
#pragma once

#include <cstddef>
#include <cstdint>

#include "src/common/bytes.h"
#include "src/net/transport.h"

namespace past {

constexpr uint32_t kFrameMagic = 0x46545350;  // "PSTF" as on-the-wire bytes
constexpr uint8_t kFrameVersion = 1;
constexpr uint8_t kFrameKindMessage = 0;
constexpr size_t kFrameHeaderSize = 24;

struct FrameHeader {
  NodeAddr from = kInvalidAddr;
  NodeAddr to = kInvalidAddr;
  uint32_t payload_len = 0;
  uint32_t payload_crc = 0;
};

enum class FrameError : uint8_t {
  kNone = 0,       // a complete, valid frame was produced
  kNeedMore,       // the buffer ends mid-frame (stream: wait for more bytes)
  kBadMagic,
  kBadVersion,
  kBadKind,
  kBadReserved,
  kTooLarge,       // payload_len exceeds the caller's cap
  kBadCrc,
  kTrailingBytes,  // datagram only: bytes after the framed payload
};
const char* FrameErrorName(FrameError e);

// Writes the 24-byte header for `payload` (computing its CRC32C) into `out`.
void EncodeFrameHeader(NodeAddr from, NodeAddr to, ByteSpan payload,
                       uint8_t out[kFrameHeaderSize]);

// Header + payload in one buffer — the UDP datagram image (the transport's
// TCP path scatter-gathers header and payload instead of concatenating).
Bytes EncodeFrame(NodeAddr from, NodeAddr to, ByteSpan payload);

// Parses and validates a header (magic, version, kind, reserved, length cap).
// Does not touch the payload; kNeedMore when data is shorter than a header.
[[nodiscard]] FrameError DecodeFrameHeader(ByteSpan data, size_t max_payload,
                                           FrameHeader* out);

// Decodes a complete datagram: exactly one frame, CRC verified, no trailing
// bytes. On success *payload aliases `data`.
[[nodiscard]] FrameError DecodeFrame(ByteSpan data, size_t max_payload,
                                     FrameHeader* header, ByteSpan* payload);

// Incremental frame extraction from a TCP byte stream. Append() buffers
// received bytes; Next() yields complete frames in order. Any error other
// than kNeedMore is sticky: the stream is unrecoverable and the connection
// must be dropped.
class FrameReader {
 public:
  explicit FrameReader(size_t max_payload) : max_payload_(max_payload) {}

  void Append(ByteSpan data);

  // kNone: *header/*payload filled with the next frame. kNeedMore: no
  // complete frame buffered. Anything else: poisoned stream (failed() stays
  // true and every further call returns the same error).
  [[nodiscard]] FrameError Next(FrameHeader* header, Bytes* payload);

  bool failed() const { return error_ != FrameError::kNone; }
  size_t buffered() const { return buf_.size() - pos_; }

 private:
  size_t max_payload_;
  Bytes buf_;
  size_t pos_ = 0;  // consumed prefix of buf_
  FrameError error_ = FrameError::kNone;
};

}  // namespace past
