#include "src/net/socket_util.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace past {
namespace {

Result<int> BindSocket(int type, const std::string& host, uint16_t port,
                       uint16_t* bound_port) {
  sockaddr_in sa;
  StatusCode code = ResolveIpv4(host, port, &sa);
  if (code != StatusCode::kOk) {
    return code;
  }
  int fd = ::socket(AF_INET, type, 0);
  if (fd < 0) {
    return StatusCode::kInternal;
  }
  int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) != 0 ||
      SetNonBlocking(fd) != StatusCode::kOk) {
    ::close(fd);
    return StatusCode::kUnavailable;
  }
  if (bound_port != nullptr) {
    sockaddr_in actual;
    socklen_t len = sizeof(actual);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &len) != 0) {
      ::close(fd);
      return StatusCode::kInternal;
    }
    *bound_port = ntohs(actual.sin_port);
  }
  return fd;
}

}  // namespace

Result<HostPort> ParseHostPort(const std::string& text) {
  size_t colon = text.rfind(':');
  if (colon == std::string::npos) {
    return StatusCode::kInvalidArgument;
  }
  HostPort hp;
  hp.host = text.substr(0, colon);
  if (hp.host.empty()) {
    hp.host = "127.0.0.1";
  }
  const std::string port_text = text.substr(colon + 1);
  if (port_text.empty() || port_text.size() > 5) {
    return StatusCode::kInvalidArgument;
  }
  uint32_t port = 0;
  for (char c : port_text) {
    if (c < '0' || c > '9') {
      return StatusCode::kInvalidArgument;
    }
    port = port * 10 + static_cast<uint32_t>(c - '0');
  }
  if (port == 0 || port > 65535) {
    return StatusCode::kInvalidArgument;
  }
  hp.port = static_cast<uint16_t>(port);
  return hp;
}

StatusCode ResolveIpv4(const std::string& host, uint16_t port, sockaddr_in* out) {
  std::memset(out, 0, sizeof(*out));
  out->sin_family = AF_INET;
  out->sin_port = htons(port);
  const char* literal = host == "localhost" ? "127.0.0.1" : host.c_str();
  if (::inet_pton(AF_INET, literal, &out->sin_addr) != 1) {
    return StatusCode::kInvalidArgument;
  }
  return StatusCode::kOk;
}

StatusCode SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0 ||
      ::fcntl(fd, F_SETFD, FD_CLOEXEC) != 0) {
    return StatusCode::kInternal;
  }
  return StatusCode::kOk;
}

Result<int> UdpBind(const std::string& host, uint16_t port, uint16_t* bound_port) {
  return BindSocket(SOCK_DGRAM, host, port, bound_port);
}

Result<int> TcpListen(const std::string& host, uint16_t port, uint16_t* bound_port) {
  Result<int> fd = BindSocket(SOCK_STREAM, host, port, bound_port);
  if (!fd.ok()) {
    return fd;
  }
  if (::listen(fd.value(), SOMAXCONN) != 0) {
    ::close(fd.value());
    return StatusCode::kUnavailable;
  }
  return fd;
}

Result<int> TcpConnect(const std::string& host, uint16_t port) {
  sockaddr_in sa;
  StatusCode code = ResolveIpv4(host, port, &sa);
  if (code != StatusCode::kOk) {
    return code;
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return StatusCode::kInternal;
  }
  if (SetNonBlocking(fd) != StatusCode::kOk) {
    ::close(fd);
    return StatusCode::kInternal;
  }
  int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) != 0 &&
      errno != EINPROGRESS) {
    ::close(fd);
    return StatusCode::kUnavailable;
  }
  return fd;
}

StatusCode ConnectResult(int fd) {
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
    return StatusCode::kInternal;
  }
  return err == 0 ? StatusCode::kOk : StatusCode::kUnavailable;
}

}  // namespace past
