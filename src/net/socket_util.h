// Thin, testable wrappers around the POSIX socket calls the transport needs.
//
// All file descriptors returned here are non-blocking and close-on-exec.
// Name resolution is deliberately literal-only (dotted IPv4, plus the
// "localhost" alias): the socket transport addresses peers through a shared
// host table of IP strings, and refusing DNS keeps connection setup free of
// hidden blocking calls.
//
// Address scheme: a socket-backend NodeAddr packs (host_index << 16) | port,
// where host_index indexes the cluster's shared host table. With the default
// single-host table ({"127.0.0.1"}) an address is simply the port number,
// which keeps localhost-cluster logs and tests readable.
#pragma once

#include <cstdint>
#include <string>

#include "src/common/status.h"
#include "src/net/transport.h"

struct sockaddr_in;

namespace past {

inline constexpr NodeAddr MakeSockAddr(uint16_t host_index, uint16_t port) {
  return (static_cast<NodeAddr>(host_index) << 16) | port;
}
inline constexpr uint16_t SockAddrHostIndex(NodeAddr addr) {
  return static_cast<uint16_t>(addr >> 16);
}
inline constexpr uint16_t SockAddrPort(NodeAddr addr) {
  return static_cast<uint16_t>(addr & 0xffff);
}

struct HostPort {
  std::string host;
  uint16_t port = 0;
};

// Parses "host:port". An empty host (":7001") means "127.0.0.1". The port
// must be 1..65535.
Result<HostPort> ParseHostPort(const std::string& text);

// Fills a sockaddr_in from a literal IPv4 string ("10.0.0.3", "localhost").
StatusCode ResolveIpv4(const std::string& host, uint16_t port, sockaddr_in* out);

// O_NONBLOCK + FD_CLOEXEC.
StatusCode SetNonBlocking(int fd);

// A bound, non-blocking UDP socket. port 0 binds an ephemeral port; the port
// actually bound is written to *bound_port.
Result<int> UdpBind(const std::string& host, uint16_t port, uint16_t* bound_port);

// A listening, non-blocking TCP socket with SO_REUSEADDR.
Result<int> TcpListen(const std::string& host, uint16_t port, uint16_t* bound_port);

// Starts a non-blocking connect; the fd becomes writable when the connect
// resolves (SO_ERROR tells how). TCP_NODELAY is set — frames are already
// batched by the transport's send queue, so Nagle only adds latency.
Result<int> TcpConnect(const std::string& host, uint16_t port);

// The socket's pending SO_ERROR as a StatusCode (kOk when the connect
// succeeded).
StatusCode ConnectResult(int fd);

}  // namespace past
