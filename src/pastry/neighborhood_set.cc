#include "src/pastry/neighborhood_set.h"

#include "src/common/check.h"

namespace past {

NeighborhoodSet::NeighborhoodSet(const NodeId& self, int capacity,
                                 std::function<double(NodeAddr)> proximity,
                                 NodeInternTable* intern)
    : self_(self), capacity_(static_cast<size_t>(capacity)),
      proximity_(std::move(proximity)) {
  PAST_CHECK(capacity > 0);
  PAST_CHECK(proximity_ != nullptr);
  if (intern == nullptr) {
    owned_intern_ = std::make_unique<NodeInternTable>();
    intern = owned_intern_.get();
  }
  intern_ = intern;
}

bool NeighborhoodSet::MaybeAdd(const NodeDescriptor& candidate) {
  if (!candidate.valid() || candidate.id == self_) {
    return false;
  }
  for (size_t i = 0; i < members_.size(); ++i) {
    if (intern_->id(members_[i]) == candidate.id) {
      if (intern_->addr(members_[i]) != candidate.addr) {
        members_[i] = intern_->Intern(candidate);
        distances_[i] = proximity_(candidate.addr);
        return true;
      }
      return false;
    }
  }
  double dist = proximity_(candidate.addr);
  size_t pos = members_.size();
  for (size_t i = 0; i < members_.size(); ++i) {
    if (dist < distances_[i]) {
      pos = i;
      break;
    }
  }
  if (pos >= capacity_) {
    return false;
  }
  members_.insert(members_.begin() + static_cast<long>(pos),
                  intern_->Intern(candidate));
  distances_.insert(distances_.begin() + static_cast<long>(pos), dist);
  if (members_.size() > capacity_) {
    members_.pop_back();
    distances_.pop_back();
  }
  return true;
}

bool NeighborhoodSet::Remove(const NodeId& id) {
  for (size_t i = 0; i < members_.size(); ++i) {
    if (intern_->id(members_[i]) == id) {
      members_.erase(members_.begin() + static_cast<long>(i));
      distances_.erase(distances_.begin() + static_cast<long>(i));
      return true;
    }
  }
  return false;
}

bool NeighborhoodSet::Contains(const NodeId& id) const {
  for (uint32_t h : members_) {
    if (intern_->id(h) == id) {
      return true;
    }
  }
  return false;
}

std::vector<NodeDescriptor> NeighborhoodSet::Members() const {
  std::vector<NodeDescriptor> out;
  out.reserve(members_.size());
  for (uint32_t h : members_) {
    out.push_back(intern_->Get(h));
  }
  return out;
}

size_t NeighborhoodSet::MemoryUsage() const {
  size_t bytes = sizeof(*this);
  bytes += members_.capacity() * sizeof(uint32_t);
  bytes += distances_.capacity() * sizeof(double);
  if (owned_intern_ != nullptr) {
    bytes += owned_intern_->MemoryUsage();
  }
  return bytes;
}

}  // namespace past
