#include "src/pastry/neighborhood_set.h"

#include "src/common/check.h"

namespace past {

NeighborhoodSet::NeighborhoodSet(const NodeId& self, int capacity,
                                 std::function<double(NodeAddr)> proximity)
    : self_(self), capacity_(static_cast<size_t>(capacity)),
      proximity_(std::move(proximity)) {
  PAST_CHECK(capacity > 0);
  PAST_CHECK(proximity_ != nullptr);
}

bool NeighborhoodSet::MaybeAdd(const NodeDescriptor& candidate) {
  if (!candidate.valid() || candidate.id == self_) {
    return false;
  }
  for (size_t i = 0; i < members_.size(); ++i) {
    if (members_[i].id == candidate.id) {
      if (members_[i].addr != candidate.addr) {
        members_[i].addr = candidate.addr;
        distances_[i] = proximity_(candidate.addr);
        return true;
      }
      return false;
    }
  }
  double dist = proximity_(candidate.addr);
  size_t pos = members_.size();
  for (size_t i = 0; i < members_.size(); ++i) {
    if (dist < distances_[i]) {
      pos = i;
      break;
    }
  }
  if (pos >= capacity_) {
    return false;
  }
  members_.insert(members_.begin() + static_cast<long>(pos), candidate);
  distances_.insert(distances_.begin() + static_cast<long>(pos), dist);
  if (members_.size() > capacity_) {
    members_.pop_back();
    distances_.pop_back();
  }
  return true;
}

bool NeighborhoodSet::Remove(const NodeId& id) {
  for (size_t i = 0; i < members_.size(); ++i) {
    if (members_[i].id == id) {
      members_.erase(members_.begin() + static_cast<long>(i));
      distances_.erase(distances_.begin() + static_cast<long>(i));
      return true;
    }
  }
  return false;
}

bool NeighborhoodSet::Contains(const NodeId& id) const {
  for (const auto& d : members_) {
    if (d.id == id) {
      return true;
    }
  }
  return false;
}

}  // namespace past
