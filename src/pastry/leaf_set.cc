#include "src/pastry/leaf_set.h"

#include <algorithm>

#include "src/common/check.h"

namespace past {
namespace {

// Ring offset walking upward (increasing ids, wrapping) from `from` to `to`.
U128 UpOffset(const NodeId& from, const NodeId& to) { return to.Sub(from); }

}  // namespace

LeafSet::LeafSet(const NodeId& self, int leaf_set_size, NodeInternTable* intern)
    : self_(self), capacity_per_side_(leaf_set_size / 2) {
  PAST_CHECK(leaf_set_size >= 2 && leaf_set_size % 2 == 0);
  if (intern == nullptr) {
    owned_intern_ = std::make_unique<NodeInternTable>();
    intern = owned_intern_.get();
  }
  intern_ = intern;
}

std::vector<NodeDescriptor> LeafSet::Resolve(const std::vector<uint32_t>& side) const {
  std::vector<NodeDescriptor> out;
  out.reserve(side.size());
  for (uint32_t h : side) {
    out.push_back(intern_->Get(h));
  }
  return out;
}

bool LeafSet::InsertSide(std::vector<uint32_t>* side, const NodeDescriptor& candidate,
                         const U128& offset, bool larger_side) {
  // Find the insertion point: sides are sorted by ascending offset.
  auto offset_of = [this, larger_side](uint32_t h) {
    const NodeId& id = intern_->id(h);
    return larger_side ? UpOffset(self_, id) : UpOffset(id, self_);
  };
  for (size_t i = 0; i < side->size(); ++i) {
    if (intern_->id((*side)[i]) == candidate.id) {
      if (intern_->addr((*side)[i]) != candidate.addr) {
        (*side)[i] = intern_->Intern(candidate);  // rejoined node, refresh address
        return true;
      }
      return false;
    }
    if (offset < offset_of((*side)[i])) {
      side->insert(side->begin() + static_cast<long>(i), intern_->Intern(candidate));
      if (side->size() > static_cast<size_t>(capacity_per_side_)) {
        side->pop_back();
      }
      return true;
    }
  }
  if (side->size() < static_cast<size_t>(capacity_per_side_)) {
    side->push_back(intern_->Intern(candidate));
    return true;
  }
  return false;
}

bool LeafSet::MaybeAdd(const NodeDescriptor& candidate) {
  if (!candidate.valid() || candidate.id == self_) {
    return false;
  }
  bool changed = false;
  changed |= InsertSide(&larger_, candidate, UpOffset(self_, candidate.id),
                        /*larger_side=*/true);
  changed |= InsertSide(&smaller_, candidate, UpOffset(candidate.id, self_),
                        /*larger_side=*/false);
  return changed;
}

bool LeafSet::Remove(const NodeId& id) {
  bool removed = false;
  auto drop = [&](std::vector<uint32_t>* side) {
    for (size_t i = 0; i < side->size(); ++i) {
      if (intern_->id((*side)[i]) == id) {
        side->erase(side->begin() + static_cast<long>(i));
        removed = true;
        return;
      }
    }
  };
  drop(&larger_);
  drop(&smaller_);
  return removed;
}

bool LeafSet::Contains(const NodeId& id) const {
  auto in = [&](const std::vector<uint32_t>& side) {
    for (uint32_t h : side) {
      if (intern_->id(h) == id) {
        return true;
      }
    }
    return false;
  };
  return in(larger_) || in(smaller_);
}

std::vector<NodeDescriptor> LeafSet::Members() const {
  std::vector<NodeDescriptor> out = Resolve(smaller_);
  for (uint32_t h : larger_) {
    const NodeId& id = intern_->id(h);
    bool dup = false;
    for (const auto& e : out) {
      if (e.id == id) {
        dup = true;
        break;
      }
    }
    if (!dup) {
      out.push_back(intern_->Get(h));
    }
  }
  return out;
}

bool LeafSet::Complete() const {
  return smaller_.size() == static_cast<size_t>(capacity_per_side_) &&
         larger_.size() == static_cast<size_t>(capacity_per_side_);
}

bool LeafSet::CoversKey(const NodeId& key) const {
  if (!Complete()) {
    // Horizon covers the whole (small or still-growing) ring.
    return true;
  }
  if (key == self_) {
    return true;
  }
  U128 up = UpOffset(self_, key);
  U128 down = UpOffset(key, self_);
  U128 max_up = UpOffset(self_, intern_->id(larger_.back()));
  U128 max_down = UpOffset(intern_->id(smaller_.back()), self_);
  return up <= max_up || down <= max_down;
}

NodeDescriptor LeafSet::ClosestTo(const NodeId& key, const NodeDescriptor& self_desc,
                                  bool include_self) const {
  NodeDescriptor best;
  U128 best_dist = U128::Max();
  auto consider = [&](const NodeDescriptor& d) {
    U128 dist = d.id.RingDistance(key);
    if (!best.valid() || dist < best_dist || (dist == best_dist && d.id < best.id)) {
      best = d;
      best_dist = dist;
    }
  };
  if (include_self) {
    consider(self_desc);
  }
  for (uint32_t h : smaller_) {
    consider(intern_->Get(h));
  }
  for (uint32_t h : larger_) {
    consider(intern_->Get(h));
  }
  return best;
}

std::vector<NodeDescriptor> LeafSet::ClosestMembers(const NodeId& key,
                                                    const NodeDescriptor& self_desc,
                                                    int k) const {
  std::vector<NodeDescriptor> all = Members();
  all.push_back(self_desc);
  std::sort(all.begin(), all.end(),
            [&key](const NodeDescriptor& a, const NodeDescriptor& b) {
              U128 da = a.id.RingDistance(key);
              U128 db = b.id.RingDistance(key);
              if (da != db) {
                return da < db;
              }
              return a.id < b.id;
            });
  if (all.size() > static_cast<size_t>(k)) {
    all.resize(static_cast<size_t>(k));
  }
  return all;
}

NodeDescriptor LeafSet::FarthestOnSideOf(const NodeId& failed_id) const {
  U128 up = UpOffset(self_, failed_id);
  U128 down = UpOffset(failed_id, self_);
  const std::vector<uint32_t>& side = (up <= down) ? larger_ : smaller_;
  if (side.empty()) {
    // Fall back to the other side.
    const std::vector<uint32_t>& other = (up <= down) ? smaller_ : larger_;
    return other.empty() ? NodeDescriptor{} : intern_->Get(other.back());
  }
  return intern_->Get(side.back());
}

size_t LeafSet::size() const { return Members().size(); }

size_t LeafSet::MemoryUsage() const {
  size_t bytes = sizeof(*this);
  bytes += smaller_.capacity() * sizeof(uint32_t);
  bytes += larger_.capacity() * sizeof(uint32_t);
  if (owned_intern_ != nullptr) {
    bytes += owned_intern_->MemoryUsage();
  }
  return bytes;
}

}  // namespace past
