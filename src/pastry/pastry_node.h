// PastryNode — the Pastry protocol engine.
//
// Implements prefix routing, the self-organizing join protocol, leaf-set
// heartbeats with failure recovery, lazy routing-table repair, per-hop
// acknowledgments for dead-hop detection, and optional randomized route
// selection (the paper's defense against malicious forwarders).
//
// Applications (PAST's storage layer, the examples, the experiment drivers)
// attach through the PastryApp interface, mirroring the classic
// deliver/forward/newLeafs API.
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/common/rng.h"
#include "src/common/shared_bytes.h"
#include "src/net/transport.h"
#include "src/obs/metrics.h"
#include "src/obs/route_trace.h"
#include "src/pastry/leaf_set.h"
#include "src/pastry/messages.h"
#include "src/pastry/neighborhood_set.h"
#include "src/pastry/node_id.h"
#include "src/pastry/node_intern.h"
#include "src/pastry/routing_table.h"
#include "src/sim/timer_wheel.h"

namespace past {

// Context handed to the application when a routed message is delivered at the
// numerically closest node.
struct DeliverContext {
  U128 key;
  uint32_t app_type = 0;
  NodeDescriptor source;
  uint16_t hops = 0;
  double distance = 0.0;            // accumulated proximity distance
  std::vector<NodeAddr> path;       // addresses visited, source first
  // Per-hop attribution: trace.hops[i] records which routing rule node
  // path[i] used to choose path[i+1] and the hop's proximity distance.
  // Invariant: trace.hops.size() == hops; trace.trace_id is the message seq.
  RouteTrace trace;
};

class PastryApp {
 public:
  virtual ~PastryApp() = default;

  // The message reached the node responsible for `key`.
  virtual void Deliver(const DeliverContext& ctx, ByteSpan payload) = 0;

  // Called on each node the message transits, just before forwarding to
  // `next`. The app may mutate the payload. Returning false absorbs the
  // message (PAST answers lookups from caches this way).
  virtual bool Forward(const U128& key, uint32_t app_type, const NodeDescriptor& next,
                       Bytes* payload) {
    (void)key;
    (void)app_type;
    (void)next;
    (void)payload;
    return true;
  }

  // A point-to-point message from another node's app layer.
  virtual void ReceiveDirect(const NodeDescriptor& from, uint32_t app_type,
                             ByteSpan payload) {
    (void)from;
    (void)app_type;
    (void)payload;
  }

  // The leaf set changed (member added/removed) — PAST re-evaluates replica
  // responsibility here.
  virtual void OnLeafSetChanged() {}
};

class PastryNode : public NetReceiver {
 public:
  // Registers with the transport immediately; the node stays inactive until
  // Bootstrap() or Join() completes. The node is transport-agnostic: `net`
  // may be the deterministic simulator (sim::Network) or a real socket
  // backend (SocketTransport). `intern` is the overlay-shared descriptor
  // table backing routing/leaf/neighborhood storage; when null the node owns
  // a private one (standalone use, unit tests).
  PastryNode(Transport* net, const NodeId& id, const PastryConfig& config, uint64_t seed,
             NodeInternTable* intern = nullptr);
  ~PastryNode() override;

  PastryNode(const PastryNode&) = delete;
  PastryNode& operator=(const PastryNode&) = delete;

  // --- lifecycle ------------------------------------------------------------

  // Declares this node the first member of a new overlay.
  void Bootstrap();
  // Joins via an existing (live) node, typically one that is near in the
  // proximity metric.
  void Join(NodeAddr bootstrap);
  // Silent crash: the node stops sending/receiving and loses its timers.
  void Fail();
  // Rejoins after a failure: contacts the nodes of its last known leaf set
  // (paper, Section 2.2 "Node addition and failure"); falls back to
  // `fallback_bootstrap` if none respond to being used as bootstrap.
  void Recover(NodeAddr fallback_bootstrap);

  bool active() const { return active_; }

  // --- global-knowledge construction (Overlay::BuildFast) -------------------
  //
  // At simulation scales where running the join protocol N times is
  // infeasible, the overlay constructs each node's state directly from
  // global knowledge and then activates it. These bypass the wire protocol
  // only — the state they build is exactly what a converged join would have
  // produced.

  // Folds `d` into all three state components (leaf set, routing table,
  // neighborhood set), as if learned from a protocol message.
  void SeedState(const NodeDescriptor& d) { Learn(d); }
  // Offers `d` to the routing table only — the cheap bulk path for
  // BuildFast's digit-subrange sampling.
  void SeedRoutingEntry(const NodeDescriptor& d) { rt_.MaybeAdd(d); }
  // Marks the seeded node live: snapshots the leaf set for recovery and
  // starts keep-alives. The node must not already be active or joining.
  void ActivateSeeded();

  // --- application ----------------------------------------------------------

  void SetApp(PastryApp* app) { app_ = app; }

  // Routes a message toward the live node numerically closest to `key`.
  // With replica_k > 0 the message may instead be delivered at any of the
  // replica_k nodes ring-closest to the key, preferring proximally close
  // ones — PAST lookups use this, since every replica holder can answer.
  // Returns the message seq (for correlating with delivery in experiments).
  // `parent_span` (a Tracer span id, 0 = untraced) rides the wire so per-hop
  // spans recorded at intermediate nodes parent onto the issuing operation.
  uint64_t Route(const U128& key, uint32_t app_type, Bytes payload,
                 uint8_t replica_k = 0, uint64_t parent_span = 0);

  // Point-to-point application message. The SharedBytes payload rides the
  // same zero-copy path as SendWire: the encoded wire is one allocation, and
  // the payload view is written straight into it.
  void SendDirect(NodeAddr to, uint32_t app_type, SharedBytes payload);
  void SendDirect(NodeAddr to, uint32_t app_type, Bytes payload) {
    SendDirect(to, app_type, SharedBytes(std::move(payload)));
  }

  // Encode-once fan-out: pre-encode a direct message, then hand the same
  // wire buffer to SendDirectWire for each recipient. Self-sends travel
  // through the transport loopback (asynchronous), unlike SendDirect's
  // synchronous local shortcut — fan-out callers handle self separately.
  SharedBytes EncodeDirect(uint32_t app_type, ByteSpan payload) const;
  void SendDirectWire(NodeAddr to, SharedBytes wire);

  // --- introspection ---------------------------------------------------------

  const NodeId& id() const { return id_; }
  NodeAddr addr() const { return addr_; }
  EventQueue* queue() const { return queue_; }
  Transport* net() const { return net_; }
  NodeDescriptor descriptor() const { return NodeDescriptor{id_, addr_}; }
  const PastryConfig& config() const { return config_; }

  const LeafSet& leaf_set() const { return leaf_; }
  const RoutingTable& routing_table() const { return rt_; }
  const NeighborhoodSet& neighborhood_set() const { return nb_; }

  // The k live nodes (including self) believed numerically closest to `key`.
  // Meaningful on the node responsible for `key` — this is PAST's replica
  // set.
  std::vector<NodeDescriptor> ReplicaSet(const U128& key, int k) const {
    return leaf_.ClosestMembers(key, descriptor(), k);
  }

  double ProximityTo(NodeAddr other) const { return net_->Proximity(addr_, other); }

  // Simulates a malicious forwarder: the node accepts routed messages but
  // silently drops them instead of forwarding (Section 2.2 "Fault-
  // tolerance"). Honest per-hop acks are still sent, so upstream nodes do
  // not detect it as dead.
  void SetMalicious(bool malicious) { malicious_ = malicious; }
  bool malicious() const { return malicious_; }

  struct Stats {
    uint64_t msgs_sent = 0;
    uint64_t join_msgs_sent = 0;         // join-protocol traffic
    uint64_t maintenance_msgs_sent = 0;  // heartbeats + repair
    uint64_t routed_seen = 0;            // routed messages handled
    uint64_t delivered = 0;
    uint64_t forwarded = 0;
    uint64_t reroutes = 0;               // re-sends after a dead next hop
    uint64_t failures_detected = 0;
  };
  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats{}; }

  // Heap footprint of this node's overlay state in bytes: routing table,
  // leaf set, neighborhood set, liveness/quarantine maps, in-flight ack
  // bookkeeping. The shared intern table is not included (it is accounted
  // once per network by Overlay::RecordMemoryMetrics).
  size_t MemoryUsage() const;

  // NetReceiver:
  void OnMessage(NodeAddr from, ByteSpan wire) override;

 private:
  struct PendingAck {
    RouteMsg msg;
    NodeDescriptor next;
    EventQueue::EventId timer = 0;
    int attempts = 0;
  };

  // An in-flight join-request forward awaiting its hop ack. A next hop that
  // never acks (departed node, recycled endpoint slot) is declared failed and
  // the join is re-forwarded, exactly like the routed-message reroute path —
  // without this, a stale table entry strands the join until keep-alive
  // failure detection evicts it, which never happens with keep-alives off.
  struct PendingJoinAck {
    JoinRequestMsg msg;  // pre-hop state, for re-forwarding on timeout
    NodeDescriptor next;
    EventQueue::EventId timer = 0;
    int attempts = 0;
  };

  // A routing decision: the chosen next hop and the rule that produced it
  // (recorded into the message's route trace and the per-rule counters).
  struct RouteChoice {
    NodeDescriptor next;
    RouteRule rule = RouteRule::kLeafSet;
  };

  // Routing core. Returns the next hop, or nullopt when this node is the
  // closest it knows (deliver here). replica_k as in Route().
  std::optional<RouteChoice> NextHop(const U128& key, uint8_t replica_k);
  std::vector<NodeDescriptor> CandidateHops(const U128& key, int min_prefix,
                                            const U128& self_dist) const;
  void ProcessRouteMsg(RouteMsg msg, int attempts);
  void ForwardTo(const RouteChoice& choice, RouteMsg msg, int attempts);

  // Join protocol.
  void HandleJoinRequest(NodeAddr from, JoinRequestMsg msg);
  void ForwardJoin(JoinRequestMsg msg, int attempts);
  void HandleJoinRows(const JoinRowsMsg& msg);
  void HandleJoinLeafSet(const JoinLeafSetMsg& msg);
  void HandleJoinNeighborhood(const JoinNeighborhoodMsg& msg);
  void FinalizeJoin();
  void SendJoinRequest();

  // Maintenance timers ride the transport's TimerWheel when it has one
  // (coalesced heap events at scale) and fall back to the EventQueue
  // otherwise. Both id spaces are uint64 with 0 = "none"; a node uses one
  // engine for its whole lifetime, so a bare id field stays unambiguous.
  uint64_t ScheduleMaintTimer(SimTime delay, EventFn fn);
  void CancelMaintTimer(uint64_t* timer);
  // Applies PastryConfig::keep_alive_quantum to a keep-alive delay.
  SimTime QuantizeMaintDelay(SimTime delay) const;

  // Maintenance.
  void ScheduleKeepAlive();
  void KeepAliveTick();
  void HandleNodeFailure(const NodeDescriptor& failed);
  void RequestRowRepairs(const std::vector<std::pair<int, int>>& vacated);

  // Folds a learned descriptor into all three state components (unless the
  // node is under death quarantine). Returns true if the leaf set changed.
  bool Learn(const NodeDescriptor& d);
  void TouchLiveness(const NodeId& id);
  bool IsQuarantined(const NodeId& id);
  void ClearQuarantine(const NodeId& id) { death_list_.erase(id); }

  // Multi-recipient sends (arrival announce, keep-alives) encode once and
  // pass the same SharedBytes to every recipient; the network's in-flight
  // closures all share that one buffer.
  void SendWire(NodeAddr to, SharedBytes wire, bool join_traffic,
                bool maintenance);
  template <typename M>
  void SendMsg(NodeAddr to, const M& msg, bool join_traffic = false,
               bool maintenance = false) {
    SendWire(to, SharedBytes(EncodeMessage(msg)), join_traffic, maintenance);
  }

  uint64_t NextSeq();

  Transport* net_;
  EventQueue* queue_;
  TimerWheel* wheel_;  // maintenance timer engine; null = use queue_
  NodeId id_;
  PastryConfig config_;
  NodeAddr addr_;
  Rng rng_;

  std::unique_ptr<NodeInternTable> owned_intern_;  // only when ctor got null
  NodeInternTable* intern_;
  RoutingTable rt_;
  LeafSet leaf_;
  NeighborhoodSet nb_;
  PastryApp* app_ = nullptr;

  bool active_ = false;
  bool joining_ = false;
  bool malicious_ = false;
  uint64_t join_seq_ = 0;
  NodeAddr join_bootstrap_ = kInvalidAddr;
  uint64_t join_retry_timer_ = 0;  // TimerWheel or EventQueue id, see wheel_
  uint64_t keep_alive_timer_ = 0;
  uint64_t seq_counter_ = 0;

  std::unordered_map<uint64_t, PendingAck> pending_acks_;
  std::unordered_map<uint64_t, PendingJoinAck> pending_join_acks_;
  std::unordered_map<U128, SimTime, U128Hash> last_heard_;
  // Recently failed nodes: id -> time of death declaration.
  std::unordered_map<U128, SimTime, U128Hash> death_list_;
  std::vector<NodeDescriptor> last_leaf_members_;  // snapshot for recovery

  Stats stats_;

  // Aggregate instruments in the network's registry, shared by every node on
  // the network; resolved once at construction (see DESIGN.md for names).
  struct Instruments {
    Counter* msgs_sent;
    Counter* join_msgs;
    Counter* maintenance_msgs;
    Counter* routed_seen;
    Counter* delivered;
    Counter* forwarded;
    Counter* reroutes;
    Counter* failures_detected;
    Counter* rule_hops[kRouteRuleCount];  // indexed by RouteRule
    Histogram* route_hops;
    Histogram* hop_distance;
    LogHistogram* hop_delay;  // sim-time between a hop's send and its receipt
  };
  Instruments obs_;
};

}  // namespace past

