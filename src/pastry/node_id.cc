#include "src/pastry/node_id.h"

#include "src/crypto/sha1.h"

namespace past {

NodeId NodeIdFromPublicKey(ByteSpan public_key) {
  auto digest = Sha1::Hash(public_key);
  return U128::FromBytes(ByteSpan(digest.data(), 16));
}

std::string NodeDescriptor::ToString() const {
  return id.ToHex().substr(0, 8) + "@" + std::to_string(addr);
}

}  // namespace past
