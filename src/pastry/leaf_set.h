// The Pastry leaf set.
//
// Each node tracks the l/2 nodes with the numerically closest larger nodeIds
// and the l/2 with the closest smaller nodeIds, in the circular 128-bit id
// space. The leaf set anchors the last hop of routing ("numerically closest
// node"), defines the replica set for PAST files (the k members closest to a
// fileId), and is the state kept alive by periodic heartbeats.
//
// When the overlay is small a node can legitimately appear on both sides
// (it is simultaneously among the closest-larger and closest-smaller ids);
// Members() deduplicates.
//
// Sides store 4-byte interned handles (node_intern.h), not descriptors, so a
// full l=32 leaf set costs 128 bytes per node at million-node scale; the
// descriptor-returning accessors materialize on demand.
#pragma once

#include <memory>
#include <vector>

#include "src/pastry/node_id.h"
#include "src/pastry/node_intern.h"

namespace past {

class LeafSet {
 public:
  // `intern` is the network-shared descriptor table; when null the set owns
  // a private one (unit tests, standalone use).
  LeafSet(const NodeId& self, int leaf_set_size, NodeInternTable* intern = nullptr);

  // Considers a node for both sides. Returns true if membership changed.
  bool MaybeAdd(const NodeDescriptor& candidate);
  // Removes from both sides. Returns true if the node was a member.
  bool Remove(const NodeId& id);

  bool Contains(const NodeId& id) const;

  // All members, deduplicated; does not include the local node.
  std::vector<NodeDescriptor> Members() const;
  // Members on one side, ordered by increasing ring offset from self.
  std::vector<NodeDescriptor> Smaller() const { return Resolve(smaller_); }
  std::vector<NodeDescriptor> Larger() const { return Resolve(larger_); }

  // True when both sides are at capacity. An incomplete leaf set means the
  // node's horizon covers the whole (small) ring, so every key is in range.
  bool Complete() const;

  // Is `key` within the id span covered by this leaf set (so that the
  // closest-node decision can be made locally)?
  bool CoversKey(const NodeId& key) const;

  // The member (or self, when `include_self`) whose id is ring-closest to
  // `key`. Ties broken toward the numerically smaller id.
  NodeDescriptor ClosestTo(const NodeId& key, const NodeDescriptor& self_desc,
                           bool include_self) const;

  // The k members (including self_desc) ring-closest to `key` — PAST's
  // replica set for a file with this routing key. Fewer than k are returned
  // only if the leaf set has fewer members.
  std::vector<NodeDescriptor> ClosestMembers(const NodeId& key,
                                             const NodeDescriptor& self_desc,
                                             int k) const;

  // The farthest member on the side of `failed_id` — the node to ask for its
  // leaf set when repairing after a failure. Invalid descriptor if the side
  // is empty.
  NodeDescriptor FarthestOnSideOf(const NodeId& failed_id) const;

  size_t size() const;
  int capacity_per_side() const { return capacity_per_side_; }

  // Drops all members (used when a failed node rejoins with fresh state).
  void Clear() {
    smaller_.clear();
    larger_.clear();
  }

  // Heap footprint in bytes (plus the private intern table when owned).
  size_t MemoryUsage() const;

 private:
  // Sorted ascending by ring offset from self (direction depends on side).
  bool InsertSide(std::vector<uint32_t>* side, const NodeDescriptor& candidate,
                  const U128& offset, bool larger_side);
  std::vector<NodeDescriptor> Resolve(const std::vector<uint32_t>& side) const;

  NodeId self_;
  int capacity_per_side_;
  std::unique_ptr<NodeInternTable> owned_intern_;
  NodeInternTable* intern_;
  std::vector<uint32_t> smaller_;  // interned handles
  std::vector<uint32_t> larger_;
};

}  // namespace past
