// Wire messages of the Pastry protocol.
//
// Every message that crosses the simulated network is encoded to bytes and
// decoded on receipt, so the protocol cannot accidentally rely on shared
// memory. Each struct provides EncodeBody/DecodeBody; EncodeMessage() adds a
// (version, type) header and DecodeHeader() strips it.
#pragma once

#include <optional>
#include <vector>

#include "src/common/serializer.h"
#include "src/obs/route_trace.h"
#include "src/pastry/node_id.h"

namespace past {

constexpr uint8_t kPastryWireVersion = 1;

enum class PastryMsgType : uint8_t {
  kRoute = 1,
  kRouteAck = 2,
  kJoinRequest = 3,
  kJoinRows = 4,
  kJoinLeafSet = 5,
  kJoinNeighborhood = 6,
  kAnnounceArrival = 7,
  kKeepAlive = 8,
  kKeepAliveAck = 9,
  kLeafSetRequest = 10,
  kLeafSetReply = 11,
  kRepairRequest = 12,
  kRepairReply = 13,
  kAppDirect = 14,
};

// --- field helpers ---------------------------------------------------------

void EncodeDescriptor(Writer* w, const NodeDescriptor& d);
[[nodiscard]] bool DecodeDescriptor(Reader* r, NodeDescriptor* d);
void EncodeDescriptorList(Writer* w, const std::vector<NodeDescriptor>& list);
[[nodiscard]] bool DecodeDescriptorList(Reader* r, std::vector<NodeDescriptor>* list);

// --- messages ---------------------------------------------------------------

// An application message being routed toward the live node with nodeId
// closest to `key`. Carries bookkeeping the experiments read at delivery:
// hop count, accumulated proximity distance, and the path of addresses.
struct RouteMsg {
  static constexpr PastryMsgType kType = PastryMsgType::kRoute;

  U128 key;
  NodeDescriptor source;
  uint32_t app_type = 0;
  uint64_t seq = 0;          // unique per (source, message) for ack matching
  // Span id of the client operation that issued this route (0 = untraced).
  // Carried across the overlay so per-hop spans recorded at intermediate
  // nodes parent onto the originating insert/lookup/reclaim span.
  uint64_t parent_span = 0;
  uint16_t hops = 0;         // overlay hops taken so far
  // When > 0, the message may be delivered at ANY of the replica_k nodes
  // ring-closest to the key (a PAST lookup is satisfiable at any replica
  // holder); the final hop then prefers the proximally closest of them,
  // which is how lookups tend to reach the replica nearest the client.
  uint8_t replica_k = 0;
  double distance = 0.0;     // accumulated proximity distance
  std::vector<NodeAddr> path;  // addresses visited (source first)
  // Route trace: one record per hop taken, appended by the forwarding node
  // (decider address, routing rule used, proximity distance of the hop).
  // Always trace.size() == hops; `seq` doubles as the trace id.
  std::vector<RouteHop> trace;
  Bytes payload;

  void EncodeBody(Writer* w) const;
  [[nodiscard]] static bool DecodeBody(Reader* r, RouteMsg* m);
};

// Per-hop acknowledgment for failure detection on the routing path.
struct RouteAckMsg {
  static constexpr PastryMsgType kType = PastryMsgType::kRouteAck;

  uint64_t seq = 0;

  void EncodeBody(Writer* w) const;
  [[nodiscard]] static bool DecodeBody(Reader* r, RouteAckMsg* m);
};

// Routed toward the joiner's own id. Every node on the path contributes
// routing-table rows to the joiner; the final node hands over its leaf set.
struct JoinRequestMsg {
  static constexpr PastryMsgType kType = PastryMsgType::kJoinRequest;

  NodeDescriptor joiner;
  uint16_t hops = 0;
  uint64_t seq = 0;

  void EncodeBody(Writer* w) const;
  [[nodiscard]] static bool DecodeBody(Reader* r, JoinRequestMsg* m);
};

// Routing-table rows for a joiner, sent by a node on the join path.
struct JoinRowsMsg {
  static constexpr PastryMsgType kType = PastryMsgType::kJoinRows;

  NodeDescriptor sender;
  // Parallel arrays: row index and that row's live entries.
  std::vector<uint16_t> row_indices;
  std::vector<std::vector<NodeDescriptor>> rows;

  void EncodeBody(Writer* w) const;
  [[nodiscard]] static bool DecodeBody(Reader* r, JoinRowsMsg* m);
};

// Leaf set handed to the joiner by the numerically closest existing node.
struct JoinLeafSetMsg {
  static constexpr PastryMsgType kType = PastryMsgType::kJoinLeafSet;

  NodeDescriptor sender;
  std::vector<NodeDescriptor> leaves;
  uint64_t seq = 0;  // echoes JoinRequestMsg::seq

  void EncodeBody(Writer* w) const;
  [[nodiscard]] static bool DecodeBody(Reader* r, JoinLeafSetMsg* m);
};

// Neighborhood set handed to the joiner by its bootstrap node.
struct JoinNeighborhoodMsg {
  static constexpr PastryMsgType kType = PastryMsgType::kJoinNeighborhood;

  NodeDescriptor sender;
  std::vector<NodeDescriptor> neighbors;

  void EncodeBody(Writer* w) const;
  [[nodiscard]] static bool DecodeBody(Reader* r, JoinNeighborhoodMsg* m);
};

// Sent by a newly joined node to everyone in its state so they can fold the
// arrival into their own tables.
struct AnnounceArrivalMsg {
  static constexpr PastryMsgType kType = PastryMsgType::kAnnounceArrival;

  NodeDescriptor joiner;

  void EncodeBody(Writer* w) const;
  [[nodiscard]] static bool DecodeBody(Reader* r, AnnounceArrivalMsg* m);
};

struct KeepAliveMsg {
  static constexpr PastryMsgType kType = PastryMsgType::kKeepAlive;

  NodeDescriptor sender;

  void EncodeBody(Writer* w) const;
  [[nodiscard]] static bool DecodeBody(Reader* r, KeepAliveMsg* m);
};

struct KeepAliveAckMsg {
  static constexpr PastryMsgType kType = PastryMsgType::kKeepAliveAck;

  NodeDescriptor sender;

  void EncodeBody(Writer* w) const;
  [[nodiscard]] static bool DecodeBody(Reader* r, KeepAliveAckMsg* m);
};

// Leaf-set repair: ask a surviving member for its leaf set.
struct LeafSetRequestMsg {
  static constexpr PastryMsgType kType = PastryMsgType::kLeafSetRequest;

  NodeDescriptor sender;

  void EncodeBody(Writer* w) const;
  [[nodiscard]] static bool DecodeBody(Reader* r, LeafSetRequestMsg* m);
};

struct LeafSetReplyMsg {
  static constexpr PastryMsgType kType = PastryMsgType::kLeafSetReply;

  NodeDescriptor sender;
  std::vector<NodeDescriptor> leaves;

  void EncodeBody(Writer* w) const;
  [[nodiscard]] static bool DecodeBody(Reader* r, LeafSetReplyMsg* m);
};

// Lazy routing-table repair: ask a row peer for its entry at (row, col).
struct RepairRequestMsg {
  static constexpr PastryMsgType kType = PastryMsgType::kRepairRequest;

  NodeDescriptor sender;
  uint16_t row = 0;
  uint16_t col = 0;

  void EncodeBody(Writer* w) const;
  [[nodiscard]] static bool DecodeBody(Reader* r, RepairRequestMsg* m);
};

struct RepairReplyMsg {
  static constexpr PastryMsgType kType = PastryMsgType::kRepairReply;

  NodeDescriptor sender;
  uint16_t row = 0;
  uint16_t col = 0;
  bool has_entry = false;
  NodeDescriptor entry;

  void EncodeBody(Writer* w) const;
  [[nodiscard]] static bool DecodeBody(Reader* r, RepairReplyMsg* m);
};

// A point-to-point application message (not routed by key): PAST uses these
// for replica pushes, receipts, fetches and audits.
struct AppDirectMsg {
  static constexpr PastryMsgType kType = PastryMsgType::kAppDirect;

  NodeDescriptor source;
  uint32_t app_type = 0;
  Bytes payload;

  void EncodeBody(Writer* w) const;
  [[nodiscard]] static bool DecodeBody(Reader* r, AppDirectMsg* m);
};

// Encodes a complete AppDirectMsg (header included) around a payload view,
// without staging the payload through a message struct first. Must stay
// byte-identical to EncodeMessage(AppDirectMsg{...}).
Bytes EncodeAppDirect(const NodeDescriptor& source, uint32_t app_type,
                      ByteSpan payload);

// --- envelope ---------------------------------------------------------------

template <typename M>
Bytes EncodeMessage(const M& msg) {
  Writer w;
  w.U8(kPastryWireVersion);
  w.U8(static_cast<uint8_t>(M::kType));
  msg.EncodeBody(&w);
  return w.Take();
}

// Reads the header; on success `*type` is set and `r` is positioned at the
// body.
[[nodiscard]] bool DecodeHeader(Reader* r, PastryMsgType* type);

// Decodes a full body and requires the buffer to be fully consumed.
template <typename M>
[[nodiscard]] bool DecodeBodyStrict(Reader* r, M* msg) {
  return M::DecodeBody(r, msg) && r->AtEnd();
}

}  // namespace past

