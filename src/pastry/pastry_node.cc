#include "src/pastry/pastry_node.h"

#include <algorithm>
#include <string>

#include "src/common/check.h"
#include "src/common/logging.h"

namespace past {
namespace {

// Hard cap on overlay hops; generously above ceil(log_16 N) for any feasible
// N, so it only trips on routing loops (a bug) or pathological churn.
constexpr uint16_t kMaxHops = 64;

}  // namespace

PastryNode::PastryNode(Transport* net, const NodeId& id, const PastryConfig& config,
                       uint64_t seed, NodeInternTable* intern)
    : net_(net),
      queue_(net->queue()),
      wheel_(net->wheel()),
      id_(id),
      config_(config),
      addr_(kInvalidAddr),
      rng_(seed),
      owned_intern_(intern == nullptr ? std::make_unique<NodeInternTable>() : nullptr),
      intern_(intern != nullptr ? intern : owned_intern_.get()),
      rt_(id, config, [this](NodeAddr a) { return net_->Proximity(addr_, a); }, intern_),
      leaf_(id, config.leaf_set_size, intern_),
      nb_(id, config.neighborhood_size,
          [this](NodeAddr a) { return net_->Proximity(addr_, a); }, intern_) {
  addr_ = net_->Register(this);
  MetricsRegistry& m = net_->metrics();
  obs_.msgs_sent = m.GetCounter("pastry.msgs_sent");
  obs_.join_msgs = m.GetCounter("pastry.join_msgs_sent");
  obs_.maintenance_msgs = m.GetCounter("pastry.maintenance_msgs_sent");
  obs_.routed_seen = m.GetCounter("pastry.routed_seen");
  obs_.delivered = m.GetCounter("pastry.delivered");
  obs_.forwarded = m.GetCounter("pastry.forwarded");
  obs_.reroutes = m.GetCounter("pastry.reroutes");
  obs_.failures_detected = m.GetCounter("pastry.failures_detected");
  for (uint8_t r = 0; r < kRouteRuleCount; ++r) {
    obs_.rule_hops[r] = m.GetCounter(
        std::string("pastry.route.rule.") + RouteRuleName(static_cast<RouteRule>(r)));
  }
  obs_.route_hops =
      m.GetHistogram("pastry.route.hops", {0, 1, 2, 3, 4, 5, 6, 8, 12, 16, 32});
  obs_.hop_distance = m.GetHistogram(
      "pastry.route.hop_distance", {10, 25, 50, 100, 200, 400, 800, 1600, 3200});
  obs_.hop_delay = m.GetLogHistogram("pastry.hop.delay_us");
}

PastryNode::~PastryNode() = default;

uint64_t PastryNode::ScheduleMaintTimer(SimTime delay, EventFn fn) {
  if (wheel_ != nullptr) {
    return wheel_->After(delay, std::move(fn));
  }
  return queue_->After(delay, std::move(fn));
}

void PastryNode::CancelMaintTimer(uint64_t* timer) {
  if (*timer == 0) {
    return;
  }
  if (wheel_ != nullptr) {
    wheel_->Cancel(*timer);
  } else {
    queue_->Cancel(*timer);
  }
  *timer = 0;
}

uint64_t PastryNode::NextSeq() {
  return (static_cast<uint64_t>(addr_) << 32) | (++seq_counter_ & 0xffffffffULL);
}

void PastryNode::SendWire(NodeAddr to, SharedBytes wire, bool join_traffic,
                          bool maintenance) {
  ++stats_.msgs_sent;
  obs_.msgs_sent->Inc();
  if (join_traffic) {
    ++stats_.join_msgs_sent;
    obs_.join_msgs->Inc();
  }
  if (maintenance) {
    ++stats_.maintenance_msgs_sent;
    obs_.maintenance_msgs->Inc();
  }
  net_->Send(addr_, to, std::move(wire));
}

// --- lifecycle ---------------------------------------------------------------

void PastryNode::Bootstrap() {
  PAST_CHECK(!active_);
  active_ = true;
  joining_ = false;
  ScheduleKeepAlive();
}

void PastryNode::Join(NodeAddr bootstrap) {
  PAST_CHECK(!active_);
  PAST_CHECK(bootstrap != addr_);
  joining_ = true;
  join_bootstrap_ = bootstrap;
  SendJoinRequest();
}

void PastryNode::SendJoinRequest() {
  join_seq_ = NextSeq();
  JoinRequestMsg req;
  req.joiner = descriptor();
  req.hops = 0;
  req.seq = join_seq_;
  SendMsg(join_bootstrap_, req, /*join_traffic=*/true);
  // Retry if the join gets lost (bootstrap died, message dropped).
  CancelMaintTimer(&join_retry_timer_);
  join_retry_timer_ = ScheduleMaintTimer(config_.join_retry_timeout, [this] {
    join_retry_timer_ = 0;
    if (joining_) {
      PAST_DEBUG("node %s retrying join", id_.ToHex().substr(0, 8).c_str());
      SendJoinRequest();
    }
  });
}

void PastryNode::Fail() {
  active_ = false;
  joining_ = false;
  malicious_ = false;
  net_->SetUp(addr_, false);
  CancelMaintTimer(&keep_alive_timer_);
  CancelMaintTimer(&join_retry_timer_);
  for (auto& [seq, pending] : pending_acks_) {
    if (pending.timer != 0) {
      queue_->Cancel(pending.timer);
    }
  }
  pending_acks_.clear();
  for (auto& [seq, pending] : pending_join_acks_) {
    if (pending.timer != 0) {
      queue_->Cancel(pending.timer);
    }
  }
  pending_join_acks_.clear();
  last_heard_.clear();
  death_list_.clear();
}

void PastryNode::Recover(NodeAddr fallback_bootstrap) {
  PAST_CHECK(!active_ && !joining_);
  net_->SetUp(addr_, true);
  rt_.Clear();
  leaf_.Clear();
  nb_.Clear();
  // Paper: "A recovering node contacts the nodes in its last known leaf set".
  NodeAddr bootstrap = fallback_bootstrap;
  for (const auto& member : last_leaf_members_) {
    if (member.valid() && member.addr != addr_ && net_->IsUp(member.addr)) {
      bootstrap = member.addr;
      break;
    }
  }
  Join(bootstrap);
}

void PastryNode::ActivateSeeded() {
  PAST_CHECK(!active_ && !joining_);
  active_ = true;
  last_leaf_members_ = leaf_.Members();
  ScheduleKeepAlive();
}

size_t PastryNode::MemoryUsage() const {
  size_t bytes = sizeof(*this);
  bytes += rt_.MemoryUsage() - sizeof(rt_);
  bytes += leaf_.MemoryUsage() - sizeof(leaf_);
  bytes += nb_.MemoryUsage() - sizeof(nb_);
  // Hash maps: node per element plus the bucket pointer array (approximate,
  // the idiom used across the repo's MemoryUsage accounting).
  auto map_bytes = [](size_t elems, size_t buckets, size_t entry_size) {
    return elems * (entry_size + 2 * sizeof(void*)) + buckets * sizeof(void*);
  };
  bytes += map_bytes(pending_acks_.size(), pending_acks_.bucket_count(),
                     sizeof(uint64_t) + sizeof(PendingAck));
  bytes += map_bytes(pending_join_acks_.size(), pending_join_acks_.bucket_count(),
                     sizeof(uint64_t) + sizeof(PendingJoinAck));
  bytes += map_bytes(last_heard_.size(), last_heard_.bucket_count(),
                     sizeof(U128) + sizeof(SimTime));
  bytes += map_bytes(death_list_.size(), death_list_.bucket_count(),
                     sizeof(U128) + sizeof(SimTime));
  bytes += last_leaf_members_.capacity() * sizeof(NodeDescriptor);
  if (owned_intern_ != nullptr) {
    bytes += owned_intern_->MemoryUsage();
  }
  return bytes;
}

// --- routing -----------------------------------------------------------------

uint64_t PastryNode::Route(const U128& key, uint32_t app_type, Bytes payload,
                           uint8_t replica_k, uint64_t parent_span) {
  PAST_CHECK_MSG(active_, "Route() on an inactive node");
  RouteMsg msg;
  msg.key = key;
  msg.source = descriptor();
  msg.app_type = app_type;
  msg.seq = NextSeq();
  msg.parent_span = parent_span;
  msg.hops = 0;
  msg.replica_k = replica_k;
  msg.distance = 0.0;
  msg.path.push_back(addr_);
  msg.payload = std::move(payload);
  uint64_t seq = msg.seq;
  ProcessRouteMsg(std::move(msg), 0);
  return seq;
}

void PastryNode::SendDirect(NodeAddr to, uint32_t app_type, SharedBytes payload) {
  PAST_CHECK_MSG(active_, "SendDirect() on an inactive node");
  if (to == addr_) {
    // Local shortcut with identical semantics — and no encode at all.
    if (app_ != nullptr) {
      app_->ReceiveDirect(descriptor(), app_type, payload.span());
    }
    return;
  }
  SendDirectWire(to, EncodeDirect(app_type, payload.span()));
}

SharedBytes PastryNode::EncodeDirect(uint32_t app_type, ByteSpan payload) const {
  return SharedBytes(EncodeAppDirect(descriptor(), app_type, payload));
}

void PastryNode::SendDirectWire(NodeAddr to, SharedBytes wire) {
  PAST_CHECK_MSG(active_, "SendDirectWire() on an inactive node");
  SendWire(to, std::move(wire), /*join_traffic=*/false, /*maintenance=*/false);
}

std::vector<NodeDescriptor> PastryNode::CandidateHops(const U128& key, int min_prefix,
                                                      const U128& self_dist) const {
  std::vector<NodeDescriptor> out;
  auto consider = [&](const NodeDescriptor& d) {
    if (!d.valid() || d.id == id_) {
      return;
    }
    if (d.id.SharedPrefixLength(key, config_.b) < min_prefix) {
      return;
    }
    if (!(d.id.RingDistance(key) < self_dist)) {
      return;
    }
    for (const auto& existing : out) {
      if (existing.id == d.id) {
        return;
      }
    }
    out.push_back(d);
  };
  for (const auto& d : leaf_.Members()) {
    consider(d);
  }
  for (const auto& d : rt_.Entries()) {
    consider(d);
  }
  for (const auto& d : nb_.Members()) {
    consider(d);
  }
  std::sort(out.begin(), out.end(),
            [&](const NodeDescriptor& a, const NodeDescriptor& b) {
              int pa = a.id.SharedPrefixLength(key, config_.b);
              int pb = b.id.SharedPrefixLength(key, config_.b);
              if (pa != pb) {
                return pa > pb;
              }
              U128 da = a.id.RingDistance(key);
              U128 db = b.id.RingDistance(key);
              if (da != db) {
                return da < db;
              }
              return a.id < b.id;
            });
  return out;
}

std::optional<PastryNode::RouteChoice> PastryNode::NextHop(const U128& key,
                                                           uint8_t replica_k) {
  if (key == id_) {
    return std::nullopt;
  }
  const NodeDescriptor self = descriptor();
  const U128 self_dist = id_.RingDistance(key);

  if (leaf_.CoversKey(key)) {
    if (replica_k > 0) {
      // Any of the replica_k ring-closest nodes can deliver. If we are one of
      // them, deliver here; otherwise jump to the proximally closest of them.
      std::vector<NodeDescriptor> members =
          leaf_.ClosestMembers(key, self, replica_k);
      NodeDescriptor nearest;
      double nearest_dist = 0.0;
      for (const NodeDescriptor& d : members) {
        if (d.id == id_) {
          return std::nullopt;  // we hold a replica: deliver here
        }
        double dist = net_->Proximity(addr_, d.addr);
        if (!nearest.valid() || dist < nearest_dist) {
          nearest = d;
          nearest_dist = dist;
        }
      }
      if (nearest.valid()) {
        return RouteChoice{nearest, RouteRule::kReplicaShortcut};
      }
      return std::nullopt;
    }
    NodeDescriptor best = leaf_.ClosestTo(key, self, /*include_self=*/true);
    if (!best.valid() || best.id == id_) {
      return std::nullopt;  // we are the numerically closest node we know
    }
    if (!config_.randomized_routing) {
      return RouteChoice{best, RouteRule::kLeafSet};
    }
    // Randomized: any leaf member strictly closer than self preserves
    // progress; bias heavily toward the closest.
    std::vector<NodeDescriptor> alts;
    alts.push_back(best);
    for (const auto& d : leaf_.Members()) {
      if (d.id != best.id && d.id.RingDistance(key) < self_dist) {
        alts.push_back(d);
      }
    }
    if (alts.size() > 1 && rng_.Bernoulli(config_.randomize_epsilon)) {
      return RouteChoice{alts[1 + rng_.PickIndex(alts.size() - 1)],
                         RouteRule::kLeafSet};
    }
    return RouteChoice{alts[0], RouteRule::kLeafSet};
  }

  const int row = id_.SharedPrefixLength(key, config_.b);
  std::optional<NodeDescriptor> entry = rt_.Get(row, key.Digit(row, config_.b));

  if (!config_.randomized_routing) {
    if (entry.has_value()) {
      return RouteChoice{*entry, RouteRule::kRoutingTable};
    }
    // Rare case: no routing-table entry. Use any known node with an
    // at-least-as-long prefix that is numerically closer.
    std::vector<NodeDescriptor> cands = CandidateHops(key, row, self_dist);
    if (cands.empty()) {
      return std::nullopt;
    }
    return RouteChoice{cands[0], RouteRule::kRareCase};
  }

  std::vector<NodeDescriptor> cands = CandidateHops(key, row, self_dist);
  if (entry.has_value()) {
    // Put the routing-table entry first (it is the "best" choice: one digit
    // of progress with proximity-optimized selection).
    std::vector<NodeDescriptor> reordered;
    reordered.push_back(*entry);
    for (const auto& d : cands) {
      if (d.id != entry->id) {
        reordered.push_back(d);
      }
    }
    cands = std::move(reordered);
  }
  if (cands.empty()) {
    return std::nullopt;
  }
  // Attribution under randomization: the proper routing-table entry counts
  // as a table hop; any other pick came from the fallback scan.
  NodeDescriptor chosen = cands[0];
  if (cands.size() > 1 && rng_.Bernoulli(config_.randomize_epsilon)) {
    chosen = cands[1 + rng_.PickIndex(cands.size() - 1)];
  }
  RouteRule rule = (entry.has_value() && chosen.id == entry->id)
                       ? RouteRule::kRoutingTable
                       : RouteRule::kRareCase;
  return RouteChoice{chosen, rule};
}

void PastryNode::ProcessRouteMsg(RouteMsg msg, int attempts) {
  ++stats_.routed_seen;
  obs_.routed_seen->Inc();
  std::optional<RouteChoice> next = NextHop(msg.key, msg.replica_k);
  if (next.has_value() && msg.replica_k > 0) {
    // Replica-aware final hops jump by proximity, and two nodes with
    // divergent leaf views could bounce a message between them; if the chosen
    // hop was already visited, fall back to strict closest-node routing
    // (which provably makes ring progress).
    for (NodeAddr visited : msg.path) {
      if (visited == next->next.addr) {
        next = NextHop(msg.key, 0);
        break;
      }
    }
  }
  if (!next.has_value()) {
    ++stats_.delivered;
    obs_.delivered->Inc();
    obs_.route_hops->Observe(static_cast<double>(msg.hops));
    if (app_ != nullptr) {
      DeliverContext ctx;
      ctx.key = msg.key;
      ctx.app_type = msg.app_type;
      ctx.source = msg.source;
      ctx.hops = msg.hops;
      ctx.distance = msg.distance;
      ctx.path = msg.path;
      ctx.trace.trace_id = msg.seq;
      ctx.trace.hops = msg.trace;
      app_->Deliver(ctx, ByteSpan(msg.payload.data(), msg.payload.size()));
    }
    return;
  }
  if (app_ != nullptr &&
      !app_->Forward(msg.key, msg.app_type, next->next, &msg.payload)) {
    return;  // absorbed by the application (e.g. answered from cache)
  }
  ++stats_.forwarded;
  obs_.forwarded->Inc();
  ForwardTo(*next, std::move(msg), attempts);
}

void PastryNode::ForwardTo(const RouteChoice& choice, RouteMsg msg, int attempts) {
  const NodeDescriptor& next = choice.next;
  if (msg.hops >= kMaxHops) {
    PAST_WARN("dropping message %llu: hop limit reached",
              static_cast<unsigned long long>(msg.seq));
    return;
  }
  RouteMsg original = msg;  // pre-hop state, for re-routing on ack timeout
  const double hop_distance = ProximityTo(next.addr);
  msg.hops += 1;
  msg.distance += hop_distance;
  msg.path.push_back(next.addr);
  msg.trace.push_back(RouteHop{addr_, choice.rule, hop_distance, queue_->Now()});
  obs_.rule_hops[static_cast<uint8_t>(choice.rule)]->Inc();
  obs_.hop_distance->Observe(hop_distance);

  if (config_.per_hop_acks) {
    // Track the in-flight hop; if no ack arrives, assume the hop is dead,
    // repair, and re-route the original message.
    uint64_t seq = msg.seq;
    auto [it, inserted] = pending_acks_.try_emplace(seq);
    if (!inserted && it->second.timer != 0) {
      queue_->Cancel(it->second.timer);
    }
    it->second.msg = std::move(original);
    it->second.next = next;
    it->second.attempts = attempts;
    it->second.timer = queue_->After(config_.ack_timeout, [this, seq] {
      auto pit = pending_acks_.find(seq);
      if (pit == pending_acks_.end()) {
        return;
      }
      PendingAck pending = std::move(pit->second);
      pending_acks_.erase(pit);
      ++stats_.reroutes;
      obs_.reroutes->Inc();
      HandleNodeFailure(pending.next);
      if (pending.attempts + 1 < config_.max_reroute_attempts && active_) {
        ProcessRouteMsg(std::move(pending.msg), pending.attempts + 1);
      }
    });
  }
  SendMsg(next.addr, msg);
}

// --- join protocol ------------------------------------------------------------

void PastryNode::HandleJoinRequest(NodeAddr from, JoinRequestMsg msg) {
  if (!active_ || msg.joiner.id == id_) {
    // Misdirected (recycled endpoint slot, or the join looped back to the
    // joiner itself): stay silent so the forwarder's hop timeout fires.
    return;
  }
  if (config_.per_hop_acks && from != msg.joiner.addr) {
    // Ack the forwarder so it can clear its in-flight join-hop record.
    RouteAckMsg ack;
    ack.seq = msg.seq;
    SendMsg(from, ack, /*join_traffic=*/true);
  }
  // Contribute routing-table rows 0..shl to the joiner. Rows below the shared
  // prefix length still contain useful candidates for the joiner because the
  // row constraint is relative to the *shared* prefix.
  const int shl = id_.SharedPrefixLength(msg.joiner.id, config_.b);
  JoinRowsMsg rows_msg;
  rows_msg.sender = descriptor();
  for (int r = 0; r <= shl && r < rt_.rows(); ++r) {
    std::vector<NodeDescriptor> row = rt_.Row(r);
    if (!row.empty()) {
      rows_msg.row_indices.push_back(static_cast<uint16_t>(r));
      rows_msg.rows.push_back(std::move(row));
    }
  }
  SendMsg(msg.joiner.addr, rows_msg, /*join_traffic=*/true);

  if (msg.hops == 0) {
    // First node on the join path (assumed proximally close to the joiner):
    // hand over the neighborhood set.
    JoinNeighborhoodMsg nb_msg;
    nb_msg.sender = descriptor();
    nb_msg.neighbors = nb_.Members();
    SendMsg(msg.joiner.addr, nb_msg, /*join_traffic=*/true);
  }

  ForwardJoin(std::move(msg), 0);
}

void PastryNode::ForwardJoin(JoinRequestMsg msg, int attempts) {
  std::optional<RouteChoice> next = NextHop(msg.joiner.id, 0);
  if (next.has_value() && next->next.id != msg.joiner.id && msg.hops < kMaxHops) {
    JoinRequestMsg fwd = msg;
    fwd.hops += 1;
    if (config_.per_hop_acks) {
      // Track the in-flight join hop; a silent next hop is declared failed
      // and the join re-forwarded, mirroring ForwardTo's reroute path.
      const uint64_t seq = msg.seq;
      auto [it, inserted] = pending_join_acks_.try_emplace(seq);
      if (!inserted && it->second.timer != 0) {
        queue_->Cancel(it->second.timer);
      }
      it->second.msg = std::move(msg);
      it->second.next = next->next;
      it->second.attempts = attempts;
      it->second.timer = queue_->After(config_.ack_timeout, [this, seq] {
        auto pit = pending_join_acks_.find(seq);
        if (pit == pending_join_acks_.end()) {
          return;
        }
        PendingJoinAck pending = std::move(pit->second);
        pending_join_acks_.erase(pit);
        ++stats_.reroutes;
        obs_.reroutes->Inc();
        HandleNodeFailure(pending.next);
        if (pending.attempts + 1 < config_.max_reroute_attempts && active_) {
          ForwardJoin(std::move(pending.msg), pending.attempts + 1);
        }
      });
    }
    SendMsg(next->next.addr, fwd, /*join_traffic=*/true);
    return;
  }
  // This node is numerically closest to the joiner: hand over the leaf set.
  JoinLeafSetMsg leaf_msg;
  leaf_msg.sender = descriptor();
  leaf_msg.leaves = leaf_.Members();
  leaf_msg.seq = msg.seq;
  SendMsg(msg.joiner.addr, leaf_msg, /*join_traffic=*/true);
}

void PastryNode::HandleJoinRows(const JoinRowsMsg& msg) {
  Learn(msg.sender);
  for (const auto& row : msg.rows) {
    for (const auto& d : row) {
      Learn(d);
    }
  }
}

void PastryNode::HandleJoinNeighborhood(const JoinNeighborhoodMsg& msg) {
  Learn(msg.sender);
  for (const auto& d : msg.neighbors) {
    Learn(d);
  }
}

void PastryNode::HandleJoinLeafSet(const JoinLeafSetMsg& msg) {
  Learn(msg.sender);
  for (const auto& d : msg.leaves) {
    Learn(d);
  }
  if (joining_) {
    FinalizeJoin();
  }
}

void PastryNode::FinalizeJoin() {
  joining_ = false;
  active_ = true;
  CancelMaintTimer(&join_retry_timer_);
  // Announce arrival to every node now present in our state, so they fold us
  // into their tables (restoring all Pastry invariants).
  AnnounceArrivalMsg announce;
  announce.joiner = descriptor();
  std::vector<NodeDescriptor> targets = rt_.Entries();
  for (const auto& d : leaf_.Members()) {
    targets.push_back(d);
  }
  for (const auto& d : nb_.Members()) {
    targets.push_back(d);
  }
  std::sort(targets.begin(), targets.end(),
            [](const NodeDescriptor& a, const NodeDescriptor& b) { return a.id < b.id; });
  targets.erase(std::unique(targets.begin(), targets.end(),
                            [](const NodeDescriptor& a, const NodeDescriptor& b) {
                              return a.id == b.id;
                            }),
                targets.end());
  // One encode, one buffer, shared by every recipient's in-flight message.
  SharedBytes announce_wire(EncodeMessage(announce));
  for (const auto& d : targets) {
    SendWire(d.addr, announce_wire, /*join_traffic=*/true, /*maintenance=*/false);
  }
  last_leaf_members_ = leaf_.Members();
  ScheduleKeepAlive();
  if (app_ != nullptr) {
    app_->OnLeafSetChanged();
  }
}

// --- maintenance ---------------------------------------------------------------

SimTime PastryNode::QuantizeMaintDelay(SimTime delay) const {
  if (config_.keep_alive_quantum <= 0) {
    return delay;
  }
  // Round the ABSOLUTE deadline up to a quantum multiple, so co-located
  // nodes' ticks land on shared instants (one wheel dispatch serves many).
  // A protocol-level adjustment: the scheduled time is identical at every
  // wheel granularity and with no wheel at all.
  const SimTime q = config_.keep_alive_quantum;
  const SimTime deadline = queue_->Now() + delay;
  return ((deadline + q - 1) / q) * q - queue_->Now();
}

void PastryNode::ScheduleKeepAlive() {
  if (config_.keep_alive_period <= 0) {
    return;
  }
  // Random phase avoids a synchronized heartbeat storm.
  SimTime first = static_cast<SimTime>(
      config_.keep_alive_period * (0.5 + 0.5 * rng_.UniformDouble()));
  keep_alive_timer_ =
      ScheduleMaintTimer(QuantizeMaintDelay(first), [this] { KeepAliveTick(); });
}

void PastryNode::KeepAliveTick() {
  if (!active_) {
    return;
  }
  const SimTime now = queue_->Now();
  std::vector<NodeDescriptor> members = leaf_.Members();
  std::vector<NodeDescriptor> suspects;
  // The keep-alive body is identical for every leaf member: encode it once
  // and share the buffer across all recipients.
  KeepAliveMsg ka;
  ka.sender = descriptor();
  SharedBytes ka_wire(EncodeMessage(ka));
  for (const auto& d : members) {
    auto it = last_heard_.find(d.id);
    if (it == last_heard_.end()) {
      last_heard_[d.id] = now;  // newly tracked member
    } else if (now - it->second > config_.failure_timeout) {
      suspects.push_back(d);
      continue;
    }
    SendWire(d.addr, ka_wire, /*join_traffic=*/false, /*maintenance=*/true);
  }
  for (const auto& d : suspects) {
    HandleNodeFailure(d);
  }
  last_leaf_members_ = leaf_.Members();
  keep_alive_timer_ = ScheduleMaintTimer(QuantizeMaintDelay(config_.keep_alive_period),
                                         [this] { KeepAliveTick(); });
}

void PastryNode::HandleNodeFailure(const NodeDescriptor& failed) {
  if (!failed.valid() || failed.id == id_) {
    return;
  }
  ++stats_.failures_detected;
  obs_.failures_detected->Inc();
  death_list_[failed.id] = queue_->Now();
  bool was_leaf = leaf_.Remove(failed.id);
  std::vector<std::pair<int, int>> vacated = rt_.RemoveNode(failed.id);
  nb_.Remove(failed.id);
  last_heard_.erase(failed.id);

  if (was_leaf) {
    // Repair: ask the farthest live member on the failed node's side for its
    // leaf set; overlap guarantees it knows the replacement.
    NodeDescriptor target = leaf_.FarthestOnSideOf(failed.id);
    if (target.valid()) {
      LeafSetRequestMsg req;
      req.sender = descriptor();
      SendMsg(target.addr, req, /*join_traffic=*/false, /*maintenance=*/true);
    }
    if (app_ != nullptr) {
      app_->OnLeafSetChanged();
    }
  }
  RequestRowRepairs(vacated);
}

void PastryNode::RequestRowRepairs(const std::vector<std::pair<int, int>>& vacated) {
  for (const auto& [row, col] : vacated) {
    // Lazy repair: ask a peer from the same row (it satisfies the same prefix
    // constraint) for its (row, col) entry; fall back to deeper rows.
    for (int r = row; r < rt_.rows(); ++r) {
      std::vector<NodeDescriptor> peers = rt_.Row(r);
      if (peers.empty()) {
        continue;
      }
      const NodeDescriptor& peer = peers[rng_.PickIndex(peers.size())];
      RepairRequestMsg req;
      req.sender = descriptor();
      req.row = static_cast<uint16_t>(row);
      req.col = static_cast<uint16_t>(col);
      SendMsg(peer.addr, req, /*join_traffic=*/false, /*maintenance=*/true);
      break;
    }
  }
}

bool PastryNode::Learn(const NodeDescriptor& d) {
  if (!d.valid() || d.id == id_ || IsQuarantined(d.id)) {
    return false;
  }
  bool leaf_changed = leaf_.MaybeAdd(d);
  rt_.MaybeAdd(d);
  nb_.MaybeAdd(d);
  // last_heard_ feeds only KeepAliveTick's failure suspicion; with
  // keep-alives off the map would grow to ~leaf-set size per node for
  // nothing, which is real memory at million-node scale.
  if (config_.keep_alive_period > 0 && leaf_changed &&
      last_heard_.find(d.id) == last_heard_.end()) {
    last_heard_[d.id] = queue_->Now();
  }
  return leaf_changed;
}

bool PastryNode::IsQuarantined(const NodeId& node_id) {
  auto it = death_list_.find(node_id);
  if (it == death_list_.end()) {
    return false;
  }
  if (queue_->Now() - it->second >= config_.death_quarantine) {
    death_list_.erase(it);
    return false;
  }
  return true;
}

void PastryNode::TouchLiveness(const NodeId& node_id) {
  if (config_.keep_alive_period <= 0) {
    return;  // nothing reads last_heard_ without keep-alives
  }
  last_heard_[node_id] = queue_->Now();
}

// --- dispatch ------------------------------------------------------------------

void PastryNode::OnMessage(NodeAddr from, ByteSpan wire) {
  Reader r(wire);
  PastryMsgType type;
  if (!DecodeHeader(&r, &type)) {
    PAST_WARN("node %u: undecodable message header from %u", addr_, from);
    return;
  }
  switch (type) {
    case PastryMsgType::kRoute: {
      RouteMsg msg;
      if (!DecodeBodyStrict(&r, &msg)) {
        break;
      }
      if (config_.per_hop_acks) {
        RouteAckMsg ack;
        ack.seq = msg.seq;
        SendMsg(from, ack);
      }
      if (!active_) {
        break;
      }
      if (malicious_) {
        // Accepts (and acks) the message but neither forwards nor delivers.
        break;
      }
      TouchLiveness(msg.source.id);
      if (!msg.trace.empty()) {
        // The last trace record was stamped by the node that forwarded to us,
        // so Now() minus its timestamp is this hop's network delay.
        const RouteHop& last = msg.trace.back();
        const int64_t hop_start = last.when;
        obs_.hop_delay->Observe(static_cast<double>(queue_->Now() - hop_start));
        Tracer& tracer = net_->tracer();
        if (tracer.enabled()) {
          uint64_t span = tracer.RecordSpan("pastry.hop", hop_start,
                                            queue_->Now(), addr_,
                                            msg.parent_span, msg.seq);
          tracer.Annotate(span, "rule", RouteRuleName(last.rule));
        }
      }
      ProcessRouteMsg(std::move(msg), 0);
      break;
    }
    case PastryMsgType::kRouteAck: {
      RouteAckMsg msg;
      if (!DecodeBodyStrict(&r, &msg)) {
        break;
      }
      auto it = pending_acks_.find(msg.seq);
      if (it != pending_acks_.end()) {
        if (it->second.timer != 0) {
          queue_->Cancel(it->second.timer);
        }
        pending_acks_.erase(it);
      }
      auto jit = pending_join_acks_.find(msg.seq);
      if (jit != pending_join_acks_.end()) {
        if (jit->second.timer != 0) {
          queue_->Cancel(jit->second.timer);
        }
        pending_join_acks_.erase(jit);
      }
      break;
    }
    case PastryMsgType::kJoinRequest: {
      JoinRequestMsg msg;
      if (DecodeBodyStrict(&r, &msg)) {
        HandleJoinRequest(from, std::move(msg));
      }
      break;
    }
    case PastryMsgType::kJoinRows: {
      JoinRowsMsg msg;
      if (DecodeBodyStrict(&r, &msg)) {
        HandleJoinRows(msg);
      }
      break;
    }
    case PastryMsgType::kJoinLeafSet: {
      JoinLeafSetMsg msg;
      if (DecodeBodyStrict(&r, &msg)) {
        HandleJoinLeafSet(msg);
      }
      break;
    }
    case PastryMsgType::kJoinNeighborhood: {
      JoinNeighborhoodMsg msg;
      if (DecodeBodyStrict(&r, &msg)) {
        HandleJoinNeighborhood(msg);
      }
      break;
    }
    case PastryMsgType::kAnnounceArrival: {
      AnnounceArrivalMsg msg;
      if (!DecodeBodyStrict(&r, &msg) || !active_) {
        break;
      }
      // An announce comes from the (re)joining node itself: direct evidence
      // of life.
      ClearQuarantine(msg.joiner.id);
      bool leaf_changed = Learn(msg.joiner);
      TouchLiveness(msg.joiner.id);
      if (leaf_changed && app_ != nullptr) {
        app_->OnLeafSetChanged();
      }
      break;
    }
    case PastryMsgType::kKeepAlive: {
      KeepAliveMsg msg;
      if (!DecodeBodyStrict(&r, &msg) || !active_) {
        break;
      }
      ClearQuarantine(msg.sender.id);
      TouchLiveness(msg.sender.id);
      Learn(msg.sender);
      KeepAliveAckMsg ack;
      ack.sender = descriptor();
      SendMsg(msg.sender.addr, ack, /*join_traffic=*/false, /*maintenance=*/true);
      break;
    }
    case PastryMsgType::kKeepAliveAck: {
      KeepAliveAckMsg msg;
      if (DecodeBodyStrict(&r, &msg) && active_) {
        ClearQuarantine(msg.sender.id);
        TouchLiveness(msg.sender.id);
      }
      break;
    }
    case PastryMsgType::kLeafSetRequest: {
      LeafSetRequestMsg msg;
      if (!DecodeBodyStrict(&r, &msg) || !active_) {
        break;
      }
      LeafSetReplyMsg reply;
      reply.sender = descriptor();
      reply.leaves = leaf_.Members();
      SendMsg(msg.sender.addr, reply, /*join_traffic=*/false, /*maintenance=*/true);
      break;
    }
    case PastryMsgType::kLeafSetReply: {
      LeafSetReplyMsg msg;
      if (!DecodeBodyStrict(&r, &msg) || !active_) {
        break;
      }
      bool leaf_changed = Learn(msg.sender);
      for (const auto& d : msg.leaves) {
        leaf_changed |= Learn(d);
      }
      if (leaf_changed && app_ != nullptr) {
        app_->OnLeafSetChanged();
      }
      break;
    }
    case PastryMsgType::kRepairRequest: {
      RepairRequestMsg msg;
      if (!DecodeBodyStrict(&r, &msg) || !active_) {
        break;
      }
      if (msg.row >= rt_.rows() || msg.col >= rt_.cols()) {
        break;
      }
      RepairReplyMsg reply;
      reply.sender = descriptor();
      reply.row = msg.row;
      reply.col = msg.col;
      std::optional<NodeDescriptor> entry = rt_.Get(msg.row, msg.col);
      if (entry.has_value()) {
        reply.has_entry = true;
        reply.entry = *entry;
      } else if (id_.SharedPrefixLength(msg.sender.id, config_.b) >= msg.row &&
                 id_.Digit(msg.row, config_.b) == msg.col) {
        // This node itself fits the requested slot.
        reply.has_entry = true;
        reply.entry = descriptor();
      }
      SendMsg(msg.sender.addr, reply, /*join_traffic=*/false, /*maintenance=*/true);
      break;
    }
    case PastryMsgType::kRepairReply: {
      RepairReplyMsg msg;
      if (DecodeBodyStrict(&r, &msg) && active_ && msg.has_entry) {
        Learn(msg.entry);
      }
      break;
    }
    case PastryMsgType::kAppDirect: {
      AppDirectMsg msg;
      if (!DecodeBodyStrict(&r, &msg) || !active_) {
        break;
      }
      ClearQuarantine(msg.source.id);
      TouchLiveness(msg.source.id);
      Learn(msg.source);
      if (app_ != nullptr) {
        app_->ReceiveDirect(msg.source, msg.app_type,
                            ByteSpan(msg.payload.data(), msg.payload.size()));
      }
      break;
    }
  }
}

}  // namespace past
