// Overlay — builds and owns a complete simulated Pastry network.
//
// Bundles the event queue, proximity topology, message network and the node
// set, and drives the real join protocol to grow the overlay one node at a
// time (each join completes before the next starts, as in the Pastry
// evaluation methodology). Experiments and PAST both sit on top of this.
#pragma once

#include <memory>
#include <vector>

#include "src/pastry/pastry_node.h"
#include "src/sim/network.h"
#include "src/sim/topology.h"

namespace past {

struct OverlayOptions {
  PastryConfig pastry;
  NetworkConfig network;
  TopologyKind topology = TopologyKind::kSphere;
  double topology_scale = 1000.0;
  uint64_t seed = 42;
  // Join via the proximally nearest live node (the paper's assumption) or a
  // uniformly random one (the locality ablation).
  bool nearest_bootstrap = true;
};

class Overlay {
 public:
  explicit Overlay(const OverlayOptions& options);

  // Adds one node with a quasi-random nodeId (hash of a random "public key")
  // and runs the join protocol to completion. Returns the new node.
  PastryNode* AddNode();
  PastryNode* AddNodeWithId(const NodeId& id);

  // Adds `n` nodes sequentially.
  void Build(int n);

  // Builds an `n`-node overlay directly from global knowledge instead of
  // running n sequential joins — the only feasible construction at 100k+
  // nodes. Leaf sets are exact (the l/2 ring neighbors per side); routing
  // tables are filled by recursive digit partition of the sorted id ring,
  // sampling a few evenly-spaced candidates per slot (with locality on, the
  // proximally better sample wins, mirroring converged-join quality). All
  // nodes are then activated. Requires an empty overlay.
  void BuildFast(int n);

  // Fails node `i`, releases its network endpoint for reuse, and destroys
  // it; node(i) returns nullptr afterwards. Models permanent departure
  // (Build/AddNode may re-let the endpoint slot to a future node).
  void RemoveNode(size_t i);

  // Refreshes sim.mem.total_bytes (all per-node state + shared tables +
  // endpoint/topology/queue storage) and sim.mem.bytes_per_node (total over
  // live node count) in the network's registry.
  void RecordMemoryMetrics();

  // Advances the simulation by `duration`.
  void Run(SimTime duration) { queue_.RunUntil(queue_.Now() + duration); }
  // Drains every pending event (only safe when periodic timers are off).
  size_t RunAll(size_t max_events = 100'000'000) { return queue_.RunAll(max_events); }

  EventQueue& queue() { return queue_; }
  Network& network() { return net_; }
  Topology& topology() { return topo_; }
  Rng& rng() { return rng_; }

  size_t size() const { return nodes_.size(); }
  // nullptr if slot `i` was removed via RemoveNode.
  PastryNode* node(size_t i) { return nodes_[i].get(); }
  const std::vector<std::unique_ptr<PastryNode>>& nodes() const { return nodes_; }
  NodeInternTable& intern_table() { return intern_; }

  // A uniformly random live (active) node; nullptr if none.
  PastryNode* RandomLiveNode();
  // The live node proximally nearest to `addr` (excluding `addr` itself).
  PastryNode* NearestLiveNode(NodeAddr addr);
  // The live node whose id is ring-closest to `key` (global knowledge; used
  // by experiments to verify delivery correctness).
  PastryNode* GloballyClosestLiveNode(const U128& key);

  U128 RandomKey() { return rng_.NextU128(); }

  const OverlayOptions& options() const { return options_; }

 private:
  void JoinAndSettle(PastryNode* node);
  // BuildFast helper: fills routing-table slots at `depth` for the sorted-id
  // subrange order[begin, end), then recurses into its digit partitions.
  void SeedRoutingRange(const std::vector<uint32_t>& order, int begin, int end,
                        int depth);

  OverlayOptions options_;
  Rng rng_;
  EventQueue queue_;
  Topology topo_;
  Network net_;
  NodeInternTable intern_;  // shared by every node's overlay structures
  std::vector<std::unique_ptr<PastryNode>> nodes_;
};

}  // namespace past

