// NodeInternTable — per-network interning of (nodeId, address) pairs.
//
// At large N the same descriptors appear in thousands of routing tables, leaf
// sets, and neighborhood sets; storing the 20-byte NodeDescriptor in every
// slot dominates per-node memory. The intern table maps each distinct
// descriptor to a dense uint32_t handle and stores the 128-bit ids and
// addresses once, struct-of-arrays, so overlay state holds 4-byte handles and
// resolves them with two indexed loads.
//
// Handles are never recycled: a (id, addr) pair stays valid for the table's
// lifetime, which is the network's lifetime. A node that rejoins at a new
// address interns a NEW handle — the stale pair costs 20 bytes, and the
// protocol's address-refresh logic already replaces handles in place.
// Handle 0 is reserved as "empty slot"; no valid descriptor ever gets it.
//
// Single-threaded, like everything else sharing a simulation stack. Each
// structure can own a private table (handy for unit tests); production
// overlays share one table per network (see Overlay).
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/pastry/node_id.h"

namespace past {

class NodeInternTable {
 public:
  using Handle = uint32_t;
  static constexpr Handle kNoHandle = 0;

  NodeInternTable();
  NodeInternTable(const NodeInternTable&) = delete;
  NodeInternTable& operator=(const NodeInternTable&) = delete;

  // Returns the handle for `d`, interning it on first sight. `d` must be
  // valid (interning the invalid descriptor would alias the empty sentinel).
  Handle Intern(const NodeDescriptor& d);

  const NodeId& id(Handle h) const { return ids_[h]; }
  NodeAddr addr(Handle h) const { return addrs_[h]; }
  NodeDescriptor Get(Handle h) const { return NodeDescriptor{ids_[h], addrs_[h]}; }

  // Distinct descriptors interned (the sentinel excluded).
  size_t size() const { return ids_.size() - 1; }
  void Reserve(size_t n);
  size_t MemoryUsage() const;

 private:
  std::vector<NodeId> ids_;      // [0] is the invalid sentinel
  std::vector<NodeAddr> addrs_;  // parallel to ids_
  std::unordered_map<NodeDescriptor, Handle, NodeDescriptorHash> index_;
};

}  // namespace past
