#include "src/pastry/node_intern.h"

#include "src/common/check.h"

namespace past {

NodeInternTable::NodeInternTable() {
  // Handle 0: the invalid sentinel, so structures can use 0 as "empty slot"
  // and still resolve it to an invalid descriptor without branching.
  ids_.push_back(NodeId());
  addrs_.push_back(kInvalidAddr);
}

NodeInternTable::Handle NodeInternTable::Intern(const NodeDescriptor& d) {
  PAST_CHECK_MSG(d.valid(), "interning an invalid descriptor");
  auto [it, inserted] =
      index_.try_emplace(d, static_cast<Handle>(ids_.size()));
  if (inserted) {
    PAST_CHECK_MSG(ids_.size() < UINT32_MAX, "intern table exhausted");
    ids_.push_back(d.id);
    addrs_.push_back(d.addr);
  }
  return it->second;
}

void NodeInternTable::Reserve(size_t n) {
  ids_.reserve(n + 1);
  addrs_.reserve(n + 1);
  index_.reserve(n);
}

size_t NodeInternTable::MemoryUsage() const {
  size_t bytes = sizeof(*this);
  bytes += ids_.capacity() * sizeof(NodeId);
  bytes += addrs_.capacity() * sizeof(NodeAddr);
  // Hash-map overhead: a node per element (key + value + next pointer,
  // approximated) plus the hash-bucket pointer array.
  bytes += index_.size() * (sizeof(NodeDescriptor) + sizeof(Handle) + 2 * sizeof(void*));
  bytes += index_.bucket_count() * sizeof(void*);
  return bytes;
}

}  // namespace past
