// The Pastry routing table.
//
// Organized as ceil(128/b) rows of 2^b - 1 useful entries. The entry at
// (row r, column c) refers to a node whose nodeId shares the first r digits
// with the local node and whose (r+1)-th digit is c. The column matching the
// local node's own digit is conceptually the local node itself and is kept
// empty. Among candidate nodes for a slot, the proximally closest one is kept
// when locality awareness is on (the heuristic behind Pastry's route-locality
// results).
//
// Storage is compact for million-node simulations: slots hold 4-byte interned
// handles (see node_intern.h) instead of 20-byte descriptors, and rows are
// allocated lazily up to the deepest touched row. Random ids populate only
// ~log_2^b N rows, so a node costs a few hundred bytes instead of the
// rows() * cols() * sizeof(descriptor) a dense table would pin.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "src/pastry/node_id.h"
#include "src/pastry/node_intern.h"

namespace past {

class RoutingTable {
 public:
  // `proximity` maps a node address to the scalar proximity metric from the
  // local node; it is consulted only when locality awareness is on.
  // `intern` is the network-shared descriptor table; when null the table
  // owns a private one (unit tests, standalone use).
  RoutingTable(const NodeId& self, const PastryConfig& config,
               std::function<double(NodeAddr)> proximity,
               NodeInternTable* intern = nullptr);

  // The entry a message with key `key` should use: row = shared prefix length
  // of (self, key), column = key's digit at that row. Empty optional if the
  // slot is vacant (or key == self id).
  std::optional<NodeDescriptor> EntryForKey(const NodeId& key) const;

  std::optional<NodeDescriptor> Get(int row, int col) const;

  // Considers `candidate` for its slot. Fills vacancies always; replaces an
  // occupant only if the candidate is proximally closer (locality on). Self
  // and ids equal to existing occupants are ignored. Returns true if the
  // table changed.
  bool MaybeAdd(const NodeDescriptor& candidate);

  // Removes every slot occupied by this node id. Returns the (row, col)
  // positions vacated.
  std::vector<std::pair<int, int>> RemoveNode(const NodeId& id);

  // All live entries (row-major).
  std::vector<NodeDescriptor> Entries() const;
  // Live entries in one row.
  std::vector<NodeDescriptor> Row(int row) const;

  // Drops all entries (used when a failed node rejoins with fresh state).
  void Clear();

  int rows() const { return config_.digits(); }
  int cols() const { return config_.cols(); }
  size_t EntryCount() const { return entry_count_; }
  // Number of rows with at least one entry (should be ~ log_2^b N).
  int PopulatedRows() const;

  // Heap footprint in bytes (slot storage; plus the private intern table when
  // this instance owns one). The shared intern table is accounted once at the
  // network level, not per node.
  size_t MemoryUsage() const;

 private:
  int SlotIndex(int row, int col) const { return row * config_.cols() + col; }
  // Grows the slot array so `row` is addressable (all-new slots vacant).
  void EnsureRow(int row);

  NodeId self_;
  PastryConfig config_;
  std::function<double(NodeAddr)> proximity_;
  std::unique_ptr<NodeInternTable> owned_intern_;
  NodeInternTable* intern_;
  // Interned handles, row-major over the first allocated_rows_ rows; 0 =
  // vacant. Rows >= allocated_rows_ are implicitly empty.
  std::vector<uint32_t> slots_;
  int allocated_rows_ = 0;
  size_t entry_count_ = 0;
};

}  // namespace past
