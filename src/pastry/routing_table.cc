#include "src/pastry/routing_table.h"

#include "src/common/check.h"

namespace past {

RoutingTable::RoutingTable(const NodeId& self, const PastryConfig& config,
                           std::function<double(NodeAddr)> proximity,
                           NodeInternTable* intern)
    : self_(self), config_(config), proximity_(std::move(proximity)) {
  if (intern == nullptr) {
    owned_intern_ = std::make_unique<NodeInternTable>();
    intern = owned_intern_.get();
  }
  intern_ = intern;
}

void RoutingTable::EnsureRow(int row) {
  if (row < allocated_rows_) {
    return;
  }
  allocated_rows_ = row + 1;
  slots_.resize(static_cast<size_t>(allocated_rows_) * config_.cols(), 0);
}

std::optional<NodeDescriptor> RoutingTable::EntryForKey(const NodeId& key) const {
  int row = self_.SharedPrefixLength(key, config_.b);
  if (row >= config_.digits()) {
    return std::nullopt;  // key == self id
  }
  return Get(row, key.Digit(row, config_.b));
}

std::optional<NodeDescriptor> RoutingTable::Get(int row, int col) const {
  PAST_CHECK(row >= 0 && row < rows() && col >= 0 && col < cols());
  if (row >= allocated_rows_) {
    return std::nullopt;
  }
  uint32_t handle = slots_[SlotIndex(row, col)];
  if (handle == NodeInternTable::kNoHandle) {
    return std::nullopt;
  }
  return intern_->Get(handle);
}

bool RoutingTable::MaybeAdd(const NodeDescriptor& candidate) {
  if (candidate.id == self_ || !candidate.valid()) {
    return false;
  }
  int row = self_.SharedPrefixLength(candidate.id, config_.b);
  PAST_CHECK(row < config_.digits());
  int col = candidate.id.Digit(row, config_.b);
  EnsureRow(row);
  uint32_t& slot = slots_[SlotIndex(row, col)];
  if (slot == NodeInternTable::kNoHandle) {
    slot = intern_->Intern(candidate);
    ++entry_count_;
    return true;
  }
  if (intern_->id(slot) == candidate.id) {
    // Refresh the address in case the node rejoined elsewhere.
    if (intern_->addr(slot) != candidate.addr) {
      slot = intern_->Intern(candidate);
      return true;
    }
    return false;
  }
  if (config_.locality_aware && proximity_) {
    if (proximity_(candidate.addr) < proximity_(intern_->addr(slot))) {
      slot = intern_->Intern(candidate);
      return true;
    }
  }
  return false;
}

std::vector<std::pair<int, int>> RoutingTable::RemoveNode(const NodeId& id) {
  std::vector<std::pair<int, int>> vacated;
  // A node occupies at most one slot, but scan all to be safe against stale
  // duplicates after address refreshes.
  for (int r = 0; r < allocated_rows_; ++r) {
    for (int c = 0; c < cols(); ++c) {
      uint32_t& slot = slots_[SlotIndex(r, c)];
      if (slot != NodeInternTable::kNoHandle && intern_->id(slot) == id) {
        slot = NodeInternTable::kNoHandle;
        --entry_count_;
        vacated.emplace_back(r, c);
      }
    }
  }
  return vacated;
}

std::vector<NodeDescriptor> RoutingTable::Entries() const {
  std::vector<NodeDescriptor> out;
  out.reserve(entry_count_);
  for (uint32_t slot : slots_) {
    if (slot != NodeInternTable::kNoHandle) {
      out.push_back(intern_->Get(slot));
    }
  }
  return out;
}

std::vector<NodeDescriptor> RoutingTable::Row(int row) const {
  PAST_CHECK(row >= 0 && row < rows());
  std::vector<NodeDescriptor> out;
  if (row >= allocated_rows_) {
    return out;
  }
  for (int c = 0; c < cols(); ++c) {
    uint32_t slot = slots_[SlotIndex(row, c)];
    if (slot != NodeInternTable::kNoHandle) {
      out.push_back(intern_->Get(slot));
    }
  }
  return out;
}

void RoutingTable::Clear() {
  slots_.clear();
  allocated_rows_ = 0;
  entry_count_ = 0;
}

int RoutingTable::PopulatedRows() const {
  int populated = 0;
  for (int r = 0; r < allocated_rows_; ++r) {
    for (int c = 0; c < cols(); ++c) {
      if (slots_[SlotIndex(r, c)] != NodeInternTable::kNoHandle) {
        ++populated;
        break;
      }
    }
  }
  return populated;
}

size_t RoutingTable::MemoryUsage() const {
  size_t bytes = sizeof(*this) + slots_.capacity() * sizeof(uint32_t);
  if (owned_intern_ != nullptr) {
    bytes += owned_intern_->MemoryUsage();
  }
  return bytes;
}

}  // namespace past
