#include "src/pastry/routing_table.h"

#include "src/common/check.h"

namespace past {

RoutingTable::RoutingTable(const NodeId& self, const PastryConfig& config,
                           std::function<double(NodeAddr)> proximity)
    : self_(self), config_(config), proximity_(std::move(proximity)) {
  slots_.resize(static_cast<size_t>(config_.digits()) * config_.cols());
}

std::optional<NodeDescriptor> RoutingTable::EntryForKey(const NodeId& key) const {
  int row = self_.SharedPrefixLength(key, config_.b);
  if (row >= config_.digits()) {
    return std::nullopt;  // key == self id
  }
  return Get(row, key.Digit(row, config_.b));
}

std::optional<NodeDescriptor> RoutingTable::Get(int row, int col) const {
  PAST_CHECK(row >= 0 && row < rows() && col >= 0 && col < cols());
  return slots_[SlotIndex(row, col)];
}

bool RoutingTable::MaybeAdd(const NodeDescriptor& candidate) {
  if (candidate.id == self_ || !candidate.valid()) {
    return false;
  }
  int row = self_.SharedPrefixLength(candidate.id, config_.b);
  PAST_CHECK(row < config_.digits());
  int col = candidate.id.Digit(row, config_.b);
  auto& slot = slots_[SlotIndex(row, col)];
  if (!slot.has_value()) {
    slot = candidate;
    ++entry_count_;
    return true;
  }
  if (slot->id == candidate.id) {
    // Refresh the address in case the node rejoined elsewhere.
    if (slot->addr != candidate.addr) {
      slot->addr = candidate.addr;
      return true;
    }
    return false;
  }
  if (config_.locality_aware && proximity_) {
    if (proximity_(candidate.addr) < proximity_(slot->addr)) {
      slot = candidate;
      return true;
    }
  }
  return false;
}

std::vector<std::pair<int, int>> RoutingTable::RemoveNode(const NodeId& id) {
  std::vector<std::pair<int, int>> vacated;
  // A node occupies at most one slot, but scan all to be safe against stale
  // duplicates after address refreshes.
  for (int r = 0; r < rows(); ++r) {
    for (int c = 0; c < cols(); ++c) {
      auto& slot = slots_[SlotIndex(r, c)];
      if (slot.has_value() && slot->id == id) {
        slot.reset();
        --entry_count_;
        vacated.emplace_back(r, c);
      }
    }
  }
  return vacated;
}

std::vector<NodeDescriptor> RoutingTable::Entries() const {
  std::vector<NodeDescriptor> out;
  out.reserve(entry_count_);
  for (const auto& slot : slots_) {
    if (slot.has_value()) {
      out.push_back(*slot);
    }
  }
  return out;
}

std::vector<NodeDescriptor> RoutingTable::Row(int row) const {
  PAST_CHECK(row >= 0 && row < rows());
  std::vector<NodeDescriptor> out;
  for (int c = 0; c < cols(); ++c) {
    const auto& slot = slots_[SlotIndex(row, c)];
    if (slot.has_value()) {
      out.push_back(*slot);
    }
  }
  return out;
}

void RoutingTable::Clear() {
  for (auto& slot : slots_) {
    slot.reset();
  }
  entry_count_ = 0;
}

int RoutingTable::PopulatedRows() const {
  int populated = 0;
  for (int r = 0; r < rows(); ++r) {
    for (int c = 0; c < cols(); ++c) {
      if (slots_[SlotIndex(r, c)].has_value()) {
        ++populated;
        break;
      }
    }
  }
  return populated;
}

}  // namespace past
