// The Pastry neighborhood set: the |M| nodes closest to the local node
// according to the *proximity* metric (not the id space). It is not used for
// routing decisions; it seeds locality-aware routing-table maintenance and is
// handed to joining nodes so they start with proximally relevant candidates.
#pragma once

#include <functional>
#include <vector>

#include "src/pastry/node_id.h"

namespace past {

class NeighborhoodSet {
 public:
  NeighborhoodSet(const NodeId& self, int capacity,
                  std::function<double(NodeAddr)> proximity);

  // Returns true if membership changed.
  bool MaybeAdd(const NodeDescriptor& candidate);
  bool Remove(const NodeId& id);
  bool Contains(const NodeId& id) const;

  // Members ordered by increasing proximity distance.
  const std::vector<NodeDescriptor>& Members() const { return members_; }
  size_t size() const { return members_.size(); }

  // Drops all members (used when a failed node rejoins with fresh state).
  void Clear() {
    members_.clear();
    distances_.clear();
  }

 private:
  NodeId self_;
  size_t capacity_;
  std::function<double(NodeAddr)> proximity_;
  std::vector<NodeDescriptor> members_;  // sorted by proximity
  std::vector<double> distances_;        // parallel to members_
};

}  // namespace past

