// The Pastry neighborhood set: the |M| nodes closest to the local node
// according to the *proximity* metric (not the id space). It is not used for
// routing decisions; it seeds locality-aware routing-table maintenance and is
// handed to joining nodes so they start with proximally relevant candidates.
//
// Members are 4-byte interned handles (node_intern.h) paired with cached
// proximity distances; Members() materializes descriptors on demand.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "src/pastry/node_id.h"
#include "src/pastry/node_intern.h"

namespace past {

class NeighborhoodSet {
 public:
  // `intern` is the network-shared descriptor table; when null the set owns
  // a private one (unit tests, standalone use).
  NeighborhoodSet(const NodeId& self, int capacity,
                  std::function<double(NodeAddr)> proximity,
                  NodeInternTable* intern = nullptr);

  // Returns true if membership changed.
  bool MaybeAdd(const NodeDescriptor& candidate);
  bool Remove(const NodeId& id);
  bool Contains(const NodeId& id) const;

  // Members ordered by increasing proximity distance.
  std::vector<NodeDescriptor> Members() const;
  size_t size() const { return members_.size(); }

  // Drops all members (used when a failed node rejoins with fresh state).
  void Clear() {
    members_.clear();
    distances_.clear();
  }

  // Heap footprint in bytes (plus the private intern table when owned).
  size_t MemoryUsage() const;

 private:
  NodeId self_;
  size_t capacity_;
  std::function<double(NodeAddr)> proximity_;
  std::unique_ptr<NodeInternTable> owned_intern_;
  NodeInternTable* intern_;
  std::vector<uint32_t> members_;  // interned handles, sorted by proximity
  std::vector<double> distances_;  // parallel to members_
};

}  // namespace past
