// Pastry node identifiers and node descriptors.
//
// A nodeId is a 128-bit value derived from the cryptographic hash of the
// node's public key (the smartcard's key in a brokered PAST network), which
// makes the id space uniformly and quasi-randomly populated — the property
// the paper relies on for replica diversity and load balance.
#pragma once

#include <string>

#include "src/common/bytes.h"
#include "src/common/u128.h"
#include "src/net/transport.h"

namespace past {

using NodeId = U128;

// nodeId = 128 most significant bits of SHA-1(public key encoding).
NodeId NodeIdFromPublicKey(ByteSpan public_key);

// A (nodeId, network address) pair: the unit stored in routing tables, leaf
// sets and neighborhood sets.
struct NodeDescriptor {
  NodeId id;
  NodeAddr addr = kInvalidAddr;

  bool valid() const { return addr != kInvalidAddr; }
  bool operator==(const NodeDescriptor& other) const = default;

  std::string ToString() const;
};

struct NodeDescriptorHash {
  size_t operator()(const NodeDescriptor& d) const {
    return d.id.HashValue() ^ (static_cast<size_t>(d.addr) * 0x9e3779b9);
  }
};

// Protocol parameters. Defaults follow the paper: b = 4, l = 32 (so routing
// needs < ceil(log_16 N) hops and delivery survives up to floor(l/2) - 1
// adjacent failures), |M| = 32 for the neighborhood set.
struct PastryConfig {
  int b = 4;                    // bits per digit
  int leaf_set_size = 32;       // l (split into l/2 smaller + l/2 larger)
  int neighborhood_size = 32;   // |M|

  // Locality heuristics: prefer proximally-closer candidates for routing
  // table slots and seed state from nodes met along the join route. Turning
  // this off is the ablation for experiment E4.
  bool locality_aware = true;

  // Randomized routing (Section 2.2 "Fault-tolerance"): choose among all
  // valid next hops with a distribution heavily biased to the best one.
  bool randomized_routing = false;
  double randomize_epsilon = 0.15;  // probability of taking a non-best hop

  // Failure handling. The defaults are sized for the default NetworkConfig
  // (one-way latency up to ~200 ms): ack_timeout must exceed the worst-case
  // round trip or live hops get misdiagnosed as dead, duplicating messages.
  SimTime keep_alive_period = 5 * kMicrosPerSecond;
  // When > 0, keep-alive tick times are rounded up to a multiple of this
  // quantum, so at large N many nodes share exact tick instants and the
  // transport's timer wheel dispatches them from one fired event per bucket.
  // A protocol-level decision (it changes *scheduled times*), so behavior is
  // identical at every wheel granularity. 0 keeps the fully-random phase.
  SimTime keep_alive_quantum = 0;
  SimTime failure_timeout = 15 * kMicrosPerSecond;  // T in the paper
  bool per_hop_acks = true;          // detect dead next-hops and re-route
  SimTime ack_timeout = 1 * kMicrosPerSecond;
  int max_reroute_attempts = 16;
  SimTime join_retry_timeout = 5 * kMicrosPerSecond;
  // After declaring a node failed, refuse to re-learn it from (possibly
  // stale) peer state for this long. Direct evidence of life — a heartbeat,
  // an announce, a direct message from the node — clears the quarantine.
  SimTime death_quarantine = 30 * kMicrosPerSecond;

  int digits() const { return 128 / b; }
  int cols() const { return 1 << b; }
};

}  // namespace past

