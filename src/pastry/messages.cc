#include "src/pastry/messages.h"

namespace past {

void EncodeDescriptor(Writer* w, const NodeDescriptor& d) {
  w->Id128(d.id);
  w->U32(d.addr);
}

bool DecodeDescriptor(Reader* r, NodeDescriptor* d) {
  return r->Id128(&d->id) && r->U32(&d->addr);
}

void EncodeDescriptorList(Writer* w, const std::vector<NodeDescriptor>& list) {
  w->U32(static_cast<uint32_t>(list.size()));
  for (const auto& d : list) {
    EncodeDescriptor(w, d);
  }
}

bool DecodeDescriptorList(Reader* r, std::vector<NodeDescriptor>* list) {
  uint32_t n;
  if (!r->U32(&n)) {
    return false;
  }
  // Each descriptor is 20 bytes; reject absurd counts before allocating.
  if (static_cast<size_t>(n) * 20 > r->remaining()) {
    return false;
  }
  list->resize(n);
  for (auto& d : *list) {
    if (!DecodeDescriptor(r, &d)) {
      return false;
    }
  }
  return true;
}

bool DecodeHeader(Reader* r, PastryMsgType* type) {
  uint8_t version, raw_type;
  if (!r->U8(&version) || !r->U8(&raw_type)) {
    return false;
  }
  if (version != kPastryWireVersion) {
    return false;
  }
  if (raw_type < 1 || raw_type > static_cast<uint8_t>(PastryMsgType::kAppDirect)) {
    return false;
  }
  *type = static_cast<PastryMsgType>(raw_type);
  return true;
}

void RouteMsg::EncodeBody(Writer* w) const {
  w->Id128(key);
  EncodeDescriptor(w, source);
  w->U32(app_type);
  w->U64(seq);
  w->U64(parent_span);
  w->U16(hops);
  w->U8(replica_k);
  w->F64(distance);
  w->U32(static_cast<uint32_t>(path.size()));
  for (NodeAddr a : path) {
    w->U32(a);
  }
  w->U32(static_cast<uint32_t>(trace.size()));
  for (const RouteHop& h : trace) {
    w->U32(h.node);
    w->U8(static_cast<uint8_t>(h.rule));
    w->F64(h.distance);
    w->I64(h.when);
  }
  w->Blob(payload);
}

bool RouteMsg::DecodeBody(Reader* r, RouteMsg* m) {
  if (!r->Id128(&m->key) || !DecodeDescriptor(r, &m->source) || !r->U32(&m->app_type) ||
      !r->U64(&m->seq) || !r->U64(&m->parent_span) || !r->U16(&m->hops) ||
      !r->U8(&m->replica_k) || !r->F64(&m->distance)) {
    return false;
  }
  uint32_t path_len;
  if (!r->U32(&path_len) || static_cast<size_t>(path_len) * 4 > r->remaining()) {
    return false;
  }
  m->path.resize(path_len);
  for (auto& a : m->path) {
    if (!r->U32(&a)) {
      return false;
    }
  }
  uint32_t trace_len;
  // Each hop record is 21 bytes; reject absurd counts before allocating.
  if (!r->U32(&trace_len) || static_cast<size_t>(trace_len) * 21 > r->remaining()) {
    return false;
  }
  m->trace.resize(trace_len);
  for (auto& h : m->trace) {
    uint8_t rule;
    if (!r->U32(&h.node) || !r->U8(&rule) || !r->F64(&h.distance) ||
        !r->I64(&h.when)) {
      return false;
    }
    if (rule >= kRouteRuleCount) {
      return false;
    }
    h.rule = static_cast<RouteRule>(rule);
  }
  return r->Blob(&m->payload);
}

void RouteAckMsg::EncodeBody(Writer* w) const { w->U64(seq); }

bool RouteAckMsg::DecodeBody(Reader* r, RouteAckMsg* m) { return r->U64(&m->seq); }

void JoinRequestMsg::EncodeBody(Writer* w) const {
  EncodeDescriptor(w, joiner);
  w->U16(hops);
  w->U64(seq);
}

bool JoinRequestMsg::DecodeBody(Reader* r, JoinRequestMsg* m) {
  return DecodeDescriptor(r, &m->joiner) && r->U16(&m->hops) && r->U64(&m->seq);
}

void JoinRowsMsg::EncodeBody(Writer* w) const {
  EncodeDescriptor(w, sender);
  w->U32(static_cast<uint32_t>(row_indices.size()));
  for (size_t i = 0; i < row_indices.size(); ++i) {
    w->U16(row_indices[i]);
    EncodeDescriptorList(w, rows[i]);
  }
}

bool JoinRowsMsg::DecodeBody(Reader* r, JoinRowsMsg* m) {
  if (!DecodeDescriptor(r, &m->sender)) {
    return false;
  }
  uint32_t n;
  if (!r->U32(&n) || static_cast<size_t>(n) * 6 > r->remaining()) {
    return false;
  }
  m->row_indices.resize(n);
  m->rows.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (!r->U16(&m->row_indices[i]) || !DecodeDescriptorList(r, &m->rows[i])) {
      return false;
    }
  }
  return true;
}

void JoinLeafSetMsg::EncodeBody(Writer* w) const {
  EncodeDescriptor(w, sender);
  EncodeDescriptorList(w, leaves);
  w->U64(seq);
}

bool JoinLeafSetMsg::DecodeBody(Reader* r, JoinLeafSetMsg* m) {
  return DecodeDescriptor(r, &m->sender) && DecodeDescriptorList(r, &m->leaves) &&
         r->U64(&m->seq);
}

void JoinNeighborhoodMsg::EncodeBody(Writer* w) const {
  EncodeDescriptor(w, sender);
  EncodeDescriptorList(w, neighbors);
}

bool JoinNeighborhoodMsg::DecodeBody(Reader* r, JoinNeighborhoodMsg* m) {
  return DecodeDescriptor(r, &m->sender) && DecodeDescriptorList(r, &m->neighbors);
}

void AnnounceArrivalMsg::EncodeBody(Writer* w) const { EncodeDescriptor(w, joiner); }

bool AnnounceArrivalMsg::DecodeBody(Reader* r, AnnounceArrivalMsg* m) {
  return DecodeDescriptor(r, &m->joiner);
}

void KeepAliveMsg::EncodeBody(Writer* w) const { EncodeDescriptor(w, sender); }

bool KeepAliveMsg::DecodeBody(Reader* r, KeepAliveMsg* m) {
  return DecodeDescriptor(r, &m->sender);
}

void KeepAliveAckMsg::EncodeBody(Writer* w) const { EncodeDescriptor(w, sender); }

bool KeepAliveAckMsg::DecodeBody(Reader* r, KeepAliveAckMsg* m) {
  return DecodeDescriptor(r, &m->sender);
}

void LeafSetRequestMsg::EncodeBody(Writer* w) const { EncodeDescriptor(w, sender); }

bool LeafSetRequestMsg::DecodeBody(Reader* r, LeafSetRequestMsg* m) {
  return DecodeDescriptor(r, &m->sender);
}

void LeafSetReplyMsg::EncodeBody(Writer* w) const {
  EncodeDescriptor(w, sender);
  EncodeDescriptorList(w, leaves);
}

bool LeafSetReplyMsg::DecodeBody(Reader* r, LeafSetReplyMsg* m) {
  return DecodeDescriptor(r, &m->sender) && DecodeDescriptorList(r, &m->leaves);
}

void RepairRequestMsg::EncodeBody(Writer* w) const {
  EncodeDescriptor(w, sender);
  w->U16(row);
  w->U16(col);
}

bool RepairRequestMsg::DecodeBody(Reader* r, RepairRequestMsg* m) {
  return DecodeDescriptor(r, &m->sender) && r->U16(&m->row) && r->U16(&m->col);
}

void RepairReplyMsg::EncodeBody(Writer* w) const {
  EncodeDescriptor(w, sender);
  w->U16(row);
  w->U16(col);
  w->Bool(has_entry);
  if (has_entry) {
    EncodeDescriptor(w, entry);
  }
}

bool RepairReplyMsg::DecodeBody(Reader* r, RepairReplyMsg* m) {
  if (!DecodeDescriptor(r, &m->sender) || !r->U16(&m->row) || !r->U16(&m->col) ||
      !r->Bool(&m->has_entry)) {
    return false;
  }
  if (m->has_entry) {
    return DecodeDescriptor(r, &m->entry);
  }
  return true;
}

void AppDirectMsg::EncodeBody(Writer* w) const {
  EncodeDescriptor(w, source);
  w->U32(app_type);
  w->Blob(payload);
}

bool AppDirectMsg::DecodeBody(Reader* r, AppDirectMsg* m) {
  return DecodeDescriptor(r, &m->source) && r->U32(&m->app_type) && r->Blob(&m->payload);
}

Bytes EncodeAppDirect(const NodeDescriptor& source, uint32_t app_type,
                      ByteSpan payload) {
  // Mirrors EncodeMessage + EncodeBody above; a payload view in, one wire
  // buffer out, no intermediate copy.
  Writer w;
  w.U8(kPastryWireVersion);
  w.U8(static_cast<uint8_t>(AppDirectMsg::kType));
  EncodeDescriptor(&w, source);
  w.U32(app_type);
  w.Blob(payload);
  return w.Take();
}

}  // namespace past
