#include "src/pastry/overlay.h"

#include "src/common/check.h"
#include "src/common/logging.h"

namespace past {

Overlay::Overlay(const OverlayOptions& options)
    : options_(options),
      rng_(options.seed),
      topo_(options.topology, options.topology_scale, &rng_),
      net_(&queue_, &topo_, options.network, rng_.NextU64()) {}

PastryNode* Overlay::AddNode() {
  // nodeId = hash of a fresh "public key" (random bytes stand in for the
  // smartcard key; the PAST layer uses real RSA keys).
  Bytes fake_key = rng_.RandomBytes(64);
  return AddNodeWithId(NodeIdFromPublicKey(fake_key));
}

PastryNode* Overlay::AddNodeWithId(const NodeId& id) {
  auto node = std::make_unique<PastryNode>(&net_, id, options_.pastry, rng_.NextU64());
  PastryNode* raw = node.get();
  nodes_.push_back(std::move(node));
  JoinAndSettle(raw);
  return raw;
}

void Overlay::JoinAndSettle(PastryNode* node) {
  // First node bootstraps the overlay.
  bool any_live = false;
  for (const auto& n : nodes_) {
    if (n.get() != node && n->active()) {
      any_live = true;
      break;
    }
  }
  if (!any_live) {
    node->Bootstrap();
    return;
  }
  PastryNode* bootstrap = options_.nearest_bootstrap ? NearestLiveNode(node->addr())
                                                     : RandomLiveNode();
  PAST_CHECK(bootstrap != nullptr);
  node->Join(bootstrap->addr());
  // Drive the simulation until the join completes.
  const SimTime chunk = 50 * kMicrosPerMilli;
  for (int i = 0; i < 20000 && !node->active(); ++i) {
    queue_.RunUntil(queue_.Now() + chunk);
  }
  PAST_CHECK_MSG(node->active(), "join did not complete");
  // Let announcements and table updates drain.
  queue_.RunUntil(queue_.Now() + 200 * kMicrosPerMilli);
}

void Overlay::Build(int n) {
  for (int i = 0; i < n; ++i) {
    AddNode();
  }
}

PastryNode* Overlay::RandomLiveNode() {
  std::vector<PastryNode*> live;
  live.reserve(nodes_.size());
  for (const auto& n : nodes_) {
    if (n->active()) {
      live.push_back(n.get());
    }
  }
  if (live.empty()) {
    return nullptr;
  }
  return live[rng_.PickIndex(live.size())];
}

PastryNode* Overlay::NearestLiveNode(NodeAddr addr) {
  PastryNode* best = nullptr;
  double best_dist = 0.0;
  for (const auto& n : nodes_) {
    if (!n->active() || n->addr() == addr) {
      continue;
    }
    double dist = net_.Proximity(addr, n->addr());
    if (best == nullptr || dist < best_dist) {
      best = n.get();
      best_dist = dist;
    }
  }
  return best;
}

PastryNode* Overlay::GloballyClosestLiveNode(const U128& key) {
  PastryNode* best = nullptr;
  U128 best_dist = U128::Max();
  for (const auto& n : nodes_) {
    if (!n->active()) {
      continue;
    }
    U128 dist = n->id().RingDistance(key);
    if (best == nullptr || dist < best_dist ||
        (dist == best_dist && n->id() < best->id())) {
      best = n.get();
      best_dist = dist;
    }
  }
  return best;
}

}  // namespace past
