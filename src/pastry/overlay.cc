#include "src/pastry/overlay.h"

#include <algorithm>
#include <numeric>

#include "src/common/check.h"
#include "src/common/logging.h"

namespace past {

Overlay::Overlay(const OverlayOptions& options)
    : options_(options),
      rng_(options.seed),
      topo_(options.topology, options.topology_scale, &rng_),
      net_(&queue_, &topo_, options.network, rng_.NextU64()) {}

PastryNode* Overlay::AddNode() {
  // nodeId = hash of a fresh "public key" (random bytes stand in for the
  // smartcard key; the PAST layer uses real RSA keys).
  Bytes fake_key = rng_.RandomBytes(64);
  return AddNodeWithId(NodeIdFromPublicKey(fake_key));
}

PastryNode* Overlay::AddNodeWithId(const NodeId& id) {
  auto node = std::make_unique<PastryNode>(&net_, id, options_.pastry, rng_.NextU64(),
                                           &intern_);
  PastryNode* raw = node.get();
  nodes_.push_back(std::move(node));
  JoinAndSettle(raw);
  return raw;
}

void Overlay::JoinAndSettle(PastryNode* node) {
  // First node bootstraps the overlay.
  bool any_live = false;
  for (const auto& n : nodes_) {
    if (n != nullptr && n.get() != node && n->active()) {
      any_live = true;
      break;
    }
  }
  if (!any_live) {
    node->Bootstrap();
    return;
  }
  PastryNode* bootstrap = options_.nearest_bootstrap ? NearestLiveNode(node->addr())
                                                     : RandomLiveNode();
  PAST_CHECK(bootstrap != nullptr);
  node->Join(bootstrap->addr());
  // Drive the simulation until the join completes.
  const SimTime chunk = 50 * kMicrosPerMilli;
  for (int i = 0; i < 20000 && !node->active(); ++i) {
    queue_.RunUntil(queue_.Now() + chunk);
  }
  PAST_CHECK_MSG(node->active(), "join did not complete");
  // Let announcements and table updates drain.
  queue_.RunUntil(queue_.Now() + 200 * kMicrosPerMilli);
}

void Overlay::Build(int n) {
  for (int i = 0; i < n; ++i) {
    AddNode();
  }
}

void Overlay::BuildFast(int n) {
  PAST_CHECK_MSG(nodes_.empty(), "BuildFast requires an empty overlay");
  PAST_CHECK(n > 0);
  net_.ReserveEndpoints(static_cast<size_t>(n));
  intern_.Reserve(static_cast<size_t>(n));
  nodes_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    // Same id derivation and per-node RNG draws as AddNode.
    Bytes fake_key = rng_.RandomBytes(64);
    nodes_.push_back(std::make_unique<PastryNode>(&net_, NodeIdFromPublicKey(fake_key),
                                                  options_.pastry, rng_.NextU64(),
                                                  &intern_));
  }
  // Sorted view over the id ring.
  std::vector<uint32_t> order(nodes_.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [this](uint32_t a, uint32_t b) {
    return nodes_[a]->id() < nodes_[b]->id();
  });
  // Exact leaf sets: hand each node its l/2 ring neighbors per side (all
  // other nodes when the ring is smaller than that). SeedState also offers
  // the neighbor to the routing table and neighborhood set, exactly as
  // learning it from a join message would.
  const int count = static_cast<int>(order.size());
  const int half = std::min(options_.pastry.leaf_set_size / 2, count - 1);
  for (int i = 0; i < count; ++i) {
    PastryNode* node = nodes_[order[static_cast<size_t>(i)]].get();
    for (int off = 1; off <= half; ++off) {
      node->SeedState(nodes_[order[static_cast<size_t>((i + off) % count)]]->descriptor());
      node->SeedState(
          nodes_[order[static_cast<size_t>((i - off + count) % count)]]->descriptor());
    }
  }
  SeedRoutingRange(order, 0, count, 0);
  for (auto& node : nodes_) {
    node->ActivateSeeded();
  }
}

void Overlay::SeedRoutingRange(const std::vector<uint32_t>& order, int begin, int end,
                               int depth) {
  if (end - begin <= 1 || depth >= options_.pastry.digits()) {
    return;
  }
  const int b = options_.pastry.b;
  const int cols = options_.pastry.cols();
  // The subrange shares its first `depth` digits and is id-sorted, so digit
  // `depth` partitions it into contiguous runs; find the run boundaries.
  std::vector<int> start(static_cast<size_t>(cols) + 1, end);
  int pos = begin;
  for (int c = 0; c < cols; ++c) {
    start[static_cast<size_t>(c)] = pos;
    while (pos < end &&
           nodes_[order[static_cast<size_t>(pos)]]->id().Digit(depth, b) == c) {
      ++pos;
    }
  }
  start[static_cast<size_t>(cols)] = end;
  // Each node's row `depth` wants, per column c != its own digit, a member of
  // run c. Offer a few evenly-spaced samples; with locality on, the routing
  // table keeps the proximally closest, approximating a converged join.
  constexpr int kSamplesPerSlot = 2;
  for (int i = begin; i < end; ++i) {
    PastryNode* node = nodes_[order[static_cast<size_t>(i)]].get();
    const int own = node->id().Digit(depth, b);
    for (int c = 0; c < cols; ++c) {
      if (c == own) {
        continue;
      }
      const int run_begin = start[static_cast<size_t>(c)];
      const int span = start[static_cast<size_t>(c) + 1] - run_begin;
      if (span <= 0) {
        continue;
      }
      const int samples = std::min(kSamplesPerSlot, span);
      for (int k = 0; k < samples; ++k) {
        const int pick = run_begin + (span * (2 * k + 1)) / (2 * samples);
        node->SeedRoutingEntry(
            nodes_[order[static_cast<size_t>(pick)]]->descriptor());
      }
    }
  }
  for (int c = 0; c < cols; ++c) {
    SeedRoutingRange(order, start[static_cast<size_t>(c)],
                     start[static_cast<size_t>(c) + 1], depth + 1);
  }
}

void Overlay::RemoveNode(size_t i) {
  PAST_CHECK(i < nodes_.size() && nodes_[i] != nullptr);
  PastryNode* node = nodes_[i].get();
  node->Fail();
  net_.Unregister(node->addr());
  nodes_[i].reset();
}

void Overlay::RecordMemoryMetrics() {
  size_t live = 0;
  size_t total = 0;
  for (const auto& n : nodes_) {
    if (n == nullptr) {
      continue;
    }
    ++live;
    total += n->MemoryUsage();
  }
  total += intern_.MemoryUsage();
  total += net_.EndpointMemoryUsage();
  total += topo_.MemoryUsage();
  total += queue_.MemoryUsage();
  net_.metrics().GetGauge("sim.mem.total_bytes")->Set(static_cast<double>(total));
  net_.metrics().GetGauge("sim.mem.bytes_per_node")
      ->Set(live > 0 ? static_cast<double>(total) / static_cast<double>(live) : 0.0);
}

PastryNode* Overlay::RandomLiveNode() {
  std::vector<PastryNode*> live;
  live.reserve(nodes_.size());
  for (const auto& n : nodes_) {
    if (n != nullptr && n->active()) {
      live.push_back(n.get());
    }
  }
  if (live.empty()) {
    return nullptr;
  }
  return live[rng_.PickIndex(live.size())];
}

PastryNode* Overlay::NearestLiveNode(NodeAddr addr) {
  PastryNode* best = nullptr;
  double best_dist = 0.0;
  for (const auto& n : nodes_) {
    if (n == nullptr || !n->active() || n->addr() == addr) {
      continue;
    }
    double dist = net_.Proximity(addr, n->addr());
    if (best == nullptr || dist < best_dist) {
      best = n.get();
      best_dist = dist;
    }
  }
  return best;
}

PastryNode* Overlay::GloballyClosestLiveNode(const U128& key) {
  PastryNode* best = nullptr;
  U128 best_dist = U128::Max();
  for (const auto& n : nodes_) {
    if (n == nullptr || !n->active()) {
      continue;
    }
    U128 dist = n->id().RingDistance(key);
    if (best == nullptr || dist < best_dist ||
        (dist == best_dist && n->id() < best->id())) {
      best = n.get();
      best_dist = dist;
    }
  }
  return best;
}

}  // namespace past
