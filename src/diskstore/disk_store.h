// DiskStore — the durable storage engine behind a PAST node's FileStore.
//
// An append-only, segment-based log (log_format.h) with an in-memory index
// mapping keys to record locations. Two keyspaces share the log: file
// replicas (PUT / REMOVE) and diverted-replica pointers (POINTER_PUT /
// POINTER_REMOVE). Values are opaque byte strings — the storage layer above
// serializes StoredFile / NodeDescriptor; the engine depends only on
// src/common and src/obs.
//
//  * Open() replays every segment in sequence order to rebuild the index,
//    truncating a torn tail (a crash mid-append) off the newest segment and
//    reporting mid-log corruption as StatusCode::kCorruption.
//  * Appends go to the active segment, which rolls over at
//    segment_target_bytes; sealed segments are fsynced and never rewritten.
//  * Overwrites and removes turn earlier records into garbage; when garbage
//    exceeds compact_garbage_ratio of the log, compaction rewrites the live
//    records into a fresh segment and deletes everything older.
//  * Durability: sync_every = 0 leaves fsync to explicit Sync() calls and
//    segment seals; sync_every = n fsyncs after every n-th append (n = 1 is
//    write-through). A record acknowledged after Sync() survives any crash.
//
// Single-threaded, like the rest of the simulator.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/common/u160.h"
#include "src/diskstore/env.h"
#include "src/diskstore/log_format.h"
#include "src/obs/metrics.h"

namespace past {

struct DiskStoreOptions {
  // Roll the active segment once it grows past this many bytes.
  uint64_t segment_target_bytes = 4ULL << 20;
  // Compact when garbage bytes exceed this fraction of all record bytes...
  double compact_garbage_ratio = 0.5;
  // ...and at least this many bytes would be reclaimed.
  uint64_t compact_min_bytes = 1ULL << 20;
  // 0: fsync only on Sync() and segment seal; n: also after every n appends.
  uint32_t sync_every = 0;
  // Defaults to Env::Default(). Tests substitute a FaultInjectionEnv.
  Env* env = nullptr;
  // Optional shared registry for the disk.* instruments.
  MetricsRegistry* metrics = nullptr;

  // --- engine-level knob (DiskStore) -----------------------------------------
  // When false, Append() never compacts inline; the owner (the sharded
  // engine's background compactor) is responsible for calling Compact() when
  // NeedsCompaction() says so. Default preserves the historical inline
  // threshold compaction.
  bool inline_compaction = true;

  // --- sharded-engine knobs (ShardedDiskStore, sharded_store.h) --------------
  // These ride in DiskStoreOptions so PastConfig.disk and DiskBackend::Open
  // plumb them without new surface. A plain DiskStore ignores them.
  //
  // Number of independent segment-log shards keyed by fileId. 1 (default)
  // keeps the legacy single-log layout: segment files directly in the store
  // directory, byte-identical to a plain DiskStore.
  uint32_t shard_count = 1;
  // Group commit: concurrent appends coalesce into one batched fsync per
  // shard (a dedicated committer thread per shard drains a commit queue).
  // Every Put/Remove is durable when it returns — sync_every=1 semantics at
  // per-batch instead of per-insert fsync cost. Overrides sync_every.
  bool group_commit = false;
  // Upper bound on appends folded into one fsync batch.
  uint32_t commit_batch_max = 64;
  // How long the committer waits for more appends to join a batch before
  // fsyncing what it has. 0 = commit whatever is pending immediately.
  uint32_t commit_delay_us = 100;
  // Move threshold compaction off the serving thread onto a background
  // worker with shard-granular handoff (implies inline_compaction = false
  // for the shards).
  bool background_compaction = false;
  // Bounded cache over value reads (block cache), bytes. 0 = off.
  uint64_t cache_bytes = 0;
};

class DiskStore {
 public:
  // Opens (creating if needed) the store in `dir` and replays the log.
  // Fails with kCorruption on a checksum-invalid record that is not a torn
  // tail, kUnavailable on I/O errors.
  static Result<std::unique_ptr<DiskStore>> Open(const std::string& dir,
                                                 const DiskStoreOptions& options);
  ~DiskStore();

  DiskStore(const DiskStore&) = delete;
  DiskStore& operator=(const DiskStore&) = delete;

  // --- file keyspace. Put overwrites (last write wins). -----------------------
  StatusCode Put(const U160& key, ByteSpan value);
  StatusCode Remove(const U160& key);  // kNotFound when absent
  bool Has(const U160& key) const { return files_.count(key) > 0; }
  Result<Bytes> Get(const U160& key) const;
  std::vector<U160> Keys() const;
  size_t key_count() const { return files_.size(); }

  // --- pointer keyspace -------------------------------------------------------
  StatusCode PutPointer(const U160& key, ByteSpan value);
  StatusCode RemovePointer(const U160& key);
  bool HasPointer(const U160& key) const { return pointers_.count(key) > 0; }
  Result<Bytes> GetPointer(const U160& key) const;
  std::vector<U160> PointerKeys() const;
  size_t pointer_count() const { return pointers_.size(); }

  // Makes every acknowledged append durable.
  StatusCode Sync();
  // Rewrites live records into a fresh segment and deletes the rest,
  // regardless of the garbage thresholds.
  StatusCode Compact();
  // True when the garbage thresholds say a compaction is worthwhile. With
  // inline_compaction off, the owner polls this after writes and schedules
  // Compact() itself (the sharded engine's background compactor).
  bool NeedsCompaction() const;

  struct Stats {
    uint64_t segments = 0;          // current segment file count
    uint64_t live_bytes = 0;        // record bytes a compaction would keep
    uint64_t garbage_bytes = 0;     // record bytes a compaction would drop
    uint64_t appends = 0;
    uint64_t bytes_written = 0;
    uint64_t syncs = 0;
    uint64_t compactions = 0;
    uint64_t replayed_records = 0;  // records applied by Open()
    uint64_t torn_tails = 0;        // torn tails truncated by Open()
  };
  const Stats& stats() const { return stats_; }
  const std::string& dir() const { return dir_; }

 private:
  struct IndexEntry {
    uint64_t seg = 0;         // segment sequence number
    uint64_t value_offset = 0;  // byte offset of the value within the file
    uint32_t value_len = 0;
    uint32_t record_len = 0;  // full on-disk record size (prefix + body)
  };
  using Index = std::unordered_map<U160, IndexEntry, U160Hash>;

  DiskStore(std::string dir, const DiskStoreOptions& options);

  StatusCode Replay();
  StatusCode ReplaySegment(uint64_t seq, bool is_last);
  // Applies one parsed record to the index and the live/garbage accounting.
  void ApplyRecord(const Record& record, const IndexEntry& entry);

  StatusCode Append(RecordType type, const U160& key, ByteSpan value);
  StatusCode OpenActiveSegment(uint64_t seq, uint64_t existing_size);
  StatusCode SealActiveSegment();
  StatusCode MaybeCompact();

  std::string SegmentPath(uint64_t seq) const;
  Result<Bytes> ReadValue(const Index& index, const U160& key) const;

  // Removal helper shared by both keyspaces.
  StatusCode RemoveFrom(Index* index, RecordType type, const U160& key);

  const std::string dir_;
  DiskStoreOptions options_;
  Env* env_;

  Index files_;
  Index pointers_;

  std::vector<uint64_t> segment_seqs_;  // ascending; back() is active
  std::unique_ptr<WritableFile> active_file_;
  uint64_t active_size_ = 0;
  uint64_t next_seq_ = 1;
  uint32_t appends_since_sync_ = 0;

  Stats stats_;

  // Shared "disk.*" instruments; null when metrics are off.
  Counter* m_bytes_written_ = nullptr;
  Counter* m_fsyncs_ = nullptr;
  Counter* m_compactions_ = nullptr;
  Counter* m_recovery_replayed_ = nullptr;
  Counter* m_torn_tails_ = nullptr;
  Gauge* m_segments_ = nullptr;
  // Wall-clock I/O timing, resolved only in PAST_PROF builds (null otherwise)
  // so default builds' metric dumps stay byte-identical.
  LogHistogram* m_append_us_ = nullptr;
  LogHistogram* m_fsync_us_ = nullptr;
};

}  // namespace past

