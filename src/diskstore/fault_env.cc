#include "src/diskstore/fault_env.h"

#include <algorithm>
#include <map>

#include "src/common/check.h"

namespace past {

class FaultWritableFile : public WritableFile {
 public:
  FaultWritableFile(FaultInjectionEnv* env, std::string rel,
                    std::unique_ptr<WritableFile> base)
      : env_(env), rel_(std::move(rel)), base_(std::move(base)) {}
  ~FaultWritableFile() override = default;

  StatusCode Append(ByteSpan data) override {
    StatusCode status = base_->Append(data);
    if (status == StatusCode::kOk) {
      env_->RecordAppend(rel_, data);
    }
    return status;
  }

  StatusCode Sync() override {
    StatusCode status = base_->Sync();
    if (status == StatusCode::kOk) {
      env_->RecordSync(rel_);
    }
    return status;
  }

  StatusCode Close() override { return base_->Close(); }

 private:
  FaultInjectionEnv* env_;
  const std::string rel_;
  std::unique_ptr<WritableFile> base_;
};

FaultInjectionEnv::FaultInjectionEnv(Env* base, std::string base_dir)
    : base_(base), base_dir_(std::move(base_dir)) {}

std::string FaultInjectionEnv::Rel(const std::string& path) const {
  if (path.rfind(base_dir_ + "/", 0) == 0) {
    return path.substr(base_dir_.size() + 1);
  }
  return path;
}

void FaultInjectionEnv::RecordAppend(const std::string& rel, ByteSpan data) {
  MutexLock lock(&mu_);
  const uint64_t offset = sizes_[rel];
  EnvOp op;
  op.kind = EnvOp::Kind::kWrite;
  op.path = rel;
  op.offset = offset;
  op.data.assign(data.begin(), data.end());
  ops_.push_back(std::move(op));
  sizes_[rel] = std::max(sizes_[rel], offset + data.size());
}

void FaultInjectionEnv::RecordSync(const std::string& rel) {
  MutexLock lock(&mu_);
  EnvOp op;
  op.kind = EnvOp::Kind::kSync;
  op.path = rel;
  ops_.push_back(std::move(op));
}

StatusCode FaultInjectionEnv::CreateDirs(const std::string& dir) {
  return base_->CreateDirs(dir);
}

StatusCode FaultInjectionEnv::ListDir(const std::string& dir,
                                      std::vector<std::string>* names) {
  return base_->ListDir(dir, names);
}

StatusCode FaultInjectionEnv::NewWritableFile(
    const std::string& path, std::unique_ptr<WritableFile>* out) {
  std::unique_ptr<WritableFile> base_file;
  StatusCode status = base_->NewWritableFile(path, &base_file);
  if (status != StatusCode::kOk) {
    return status;
  }
  const std::string rel = Rel(path);
  {
    MutexLock lock(&mu_);
    auto it = sizes_.find(rel);
    if (it == sizes_.end()) {
      // First time this env sees the file; it must not predate the env, or
      // the op log would not describe its full contents.
      uint64_t on_disk = 0;
      PAST_CHECK_MSG(base_->FileSize(path, &on_disk) == StatusCode::kNotFound ||
                         on_disk == 0,
                     "FaultInjectionEnv requires an initially empty directory");
      sizes_[rel] = 0;
      EnvOp op;
      op.kind = EnvOp::Kind::kCreate;
      op.path = rel;
      ops_.push_back(std::move(op));
    }
  }
  *out = std::make_unique<FaultWritableFile>(this, rel, std::move(base_file));
  return StatusCode::kOk;
}

StatusCode FaultInjectionEnv::ReadFile(const std::string& path, Bytes* out) {
  return base_->ReadFile(path, out);
}

StatusCode FaultInjectionEnv::ReadRange(const std::string& path,
                                        uint64_t offset, size_t length,
                                        Bytes* out) {
  return base_->ReadRange(path, offset, length, out);
}

StatusCode FaultInjectionEnv::FileSize(const std::string& path,
                                       uint64_t* size) {
  return base_->FileSize(path, size);
}

StatusCode FaultInjectionEnv::RemoveFile(const std::string& path) {
  StatusCode status = base_->RemoveFile(path);
  if (status == StatusCode::kOk) {
    const std::string rel = Rel(path);
    MutexLock lock(&mu_);
    sizes_.erase(rel);
    EnvOp op;
    op.kind = EnvOp::Kind::kRemove;
    op.path = rel;
    ops_.push_back(std::move(op));
  }
  return status;
}

StatusCode FaultInjectionEnv::TruncateFile(const std::string& path,
                                           uint64_t size) {
  StatusCode status = base_->TruncateFile(path, size);
  if (status == StatusCode::kOk) {
    const std::string rel = Rel(path);
    MutexLock lock(&mu_);
    sizes_[rel] = size;
    EnvOp op;
    op.kind = EnvOp::Kind::kTruncate;
    op.path = rel;
    op.size = size;
    ops_.push_back(std::move(op));
  }
  return status;
}

bool FaultInjectionEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

StatusCode FaultInjectionEnv::Materialize(
    const std::string& target_dir, const MaterializeOptions& options) const {
  MutexLock lock(&mu_);
  PAST_CHECK(options.op_count <= ops_.size());
  std::map<std::string, Bytes> model;
  for (size_t i = 0; i < options.op_count; ++i) {
    if (i == options.drop_op) {
      continue;
    }
    const EnvOp& op = ops_[i];
    switch (op.kind) {
      case EnvOp::Kind::kCreate:
        model.try_emplace(op.path);
        break;
      case EnvOp::Kind::kWrite: {
        size_t take = op.data.size();
        if (i + 1 == options.op_count &&
            options.torn_tail_bytes != SIZE_MAX) {
          take = std::min(take, options.torn_tail_bytes);
        }
        Bytes& file = model[op.path];
        // Zero-fill any gap a dropped earlier write left behind.
        if (file.size() < op.offset + take) {
          file.resize(op.offset + take, 0);
        }
        std::copy(op.data.begin(), op.data.begin() + take,
                  file.begin() + op.offset);
        break;
      }
      case EnvOp::Kind::kSync:
        break;
      case EnvOp::Kind::kRemove:
        model.erase(op.path);
        break;
      case EnvOp::Kind::kTruncate: {
        Bytes& file = model[op.path];
        file.resize(op.size, 0);
        break;
      }
    }
  }
  StatusCode status = base_->CreateDirs(target_dir);
  if (status != StatusCode::kOk) {
    return status;
  }
  for (const auto& [rel, content] : model) {
    // Shard layouts nest segments one directory deep; recreate the parent.
    const size_t slash = rel.rfind('/');
    if (slash != std::string::npos) {
      status = base_->CreateDirs(target_dir + "/" + rel.substr(0, slash));
      if (status != StatusCode::kOk) {
        return status;
      }
    }
    std::unique_ptr<WritableFile> out;
    status = base_->NewWritableFile(target_dir + "/" + rel, &out);
    if (status != StatusCode::kOk) {
      return status;
    }
    status = out->Append(ByteSpan(content.data(), content.size()));
    if (status == StatusCode::kOk) {
      status = out->Close();
    }
    if (status != StatusCode::kOk) {
      return status;
    }
  }
  return StatusCode::kOk;
}

}  // namespace past
