// On-disk format of the append-only segment log (see DESIGN.md §7).
//
// A store directory holds segment files named seg-<seq16hex>.log, replayed
// in sequence order. Each segment starts with a fixed header:
//
//   +-------------+-------------+------------------+
//   | magic (u32) | version(u32)| segment seq (u64) |
//   +-------------+-------------+------------------+
//
// followed by length-prefixed, CRC32C-checksummed records:
//
//   +-----------+----------+-----------+-----------+------------------+
//   | crc (u32) | len (u32)| type (u8) | key (20B) | value (len-21 B) |
//   +-----------+----------+-----------+-----------+------------------+
//
// `len` counts the bytes after the length field (type + key + value); the
// CRC covers exactly those bytes, so a corrupted length lands the CRC on
// unrelated bytes and still fails verification. All integers little-endian,
// matching the serializer.
#pragma once

#include <cstdint>
#include <string>

#include "src/common/bytes.h"
#include "src/common/u160.h"

namespace past {

inline constexpr uint32_t kSegmentMagic = 0x4c545350;  // "PSTL"
inline constexpr uint32_t kSegmentVersion = 1;
inline constexpr size_t kSegmentHeaderSize = 16;
// crc(4) + len(4); the checksummed body starts after these.
inline constexpr size_t kRecordPrefixSize = 8;
// type(1) + key(20).
inline constexpr size_t kRecordBodyMinSize = 21;

enum class RecordType : uint8_t {
  kPut = 1,            // file replica: key -> value
  kRemove = 2,         // file replica deleted
  kPointerPut = 3,     // diverted-replica pointer: key -> value
  kPointerRemove = 4,  // pointer deleted
};

inline bool IsValidRecordType(uint8_t t) {
  return t >= static_cast<uint8_t>(RecordType::kPut) &&
         t <= static_cast<uint8_t>(RecordType::kPointerRemove);
}

struct Record {
  RecordType type = RecordType::kPut;
  U160 key;
  Bytes value;
};

// seg-<seq as 16 hex digits>.log
std::string SegmentFileName(uint64_t seq);
// Inverse of SegmentFileName; false if `name` is not a segment file name.
[[nodiscard]] bool ParseSegmentFileName(const std::string& name, uint64_t* seq);

Bytes EncodeSegmentHeader(uint64_t seq);
[[nodiscard]] bool DecodeSegmentHeader(ByteSpan data, uint64_t* seq);

// The full on-disk encoding of one record (prefix + body).
Bytes EncodeRecord(RecordType type, const U160& key, ByteSpan value);

enum class [[nodiscard]] ParseStatus {
  kOk,         // *out holds the record, *offset advanced past it
  kAtEnd,      // clean end of buffer (offset == buf.size())
  kTruncated,  // header or body runs past the end of the buffer (torn tail)
  kCorrupt,    // CRC mismatch or invalid record type
};

// Parses the record starting at *offset. On kOk, *offset is advanced; on any
// other status it is left at the record start (the consistent-prefix cut).
ParseStatus ParseRecord(ByteSpan buf, size_t* offset, Record* out);

}  // namespace past

