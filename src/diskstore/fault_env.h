// Crash-injection Env for testing DiskStore recovery.
//
// FaultInjectionEnv forwards every operation to a base Env while recording
// the mutating ones (create / write / sync / remove / truncate) with their
// offsets and payloads. After driving a store through a workload, a test can
// Materialize() the state a crash would have left behind at ANY prefix of
// that operation log — optionally tearing the final write in half or
// dropping one write entirely (the lost bytes read back as zeros, the way a
// never-written page does) — into a fresh directory, then Open() a store
// there and check what recovery reconstructs.
//
// The env is meant to be pointed at an initially empty directory: the
// operation log is the sole source of truth for Materialize().
//
// The op log is internally synchronized, so a store with a group-commit
// committer thread can run on top of this env; ops() and Materialize() still
// expect a quiescent store (no in-flight appends) so the log they see is a
// well-defined prefix.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/mutex.h"
#include "src/diskstore/env.h"

namespace past {

struct EnvOp {
  enum class Kind : uint8_t { kCreate, kWrite, kSync, kRemove, kTruncate };
  Kind kind;
  std::string path;  // relative to the env's base dir
  uint64_t offset = 0;  // kWrite: where the data lands
  uint64_t size = 0;    // kTruncate: resulting file size
  Bytes data;           // kWrite payload
};

struct MaterializeOptions {
  // Apply ops [0, op_count); the crash happens after the op_count-th op.
  size_t op_count = 0;
  // If the last applied op is a write, persist only its first
  // torn_tail_bytes bytes. SIZE_MAX = the write landed whole.
  size_t torn_tail_bytes = SIZE_MAX;
  // Drop the op at this index entirely (a write lost in the page cache);
  // bytes later writes did not cover read back as zeros. SIZE_MAX = none.
  size_t drop_op = SIZE_MAX;
};

class FaultInjectionEnv : public Env {
 public:
  // Records ops on paths under `base_dir`; everything still executes
  // against `base` for real.
  FaultInjectionEnv(Env* base, std::string base_dir);

  StatusCode CreateDirs(const std::string& dir) override;
  StatusCode ListDir(const std::string& dir,
                     std::vector<std::string>* names) override;
  StatusCode NewWritableFile(const std::string& path,
                             std::unique_ptr<WritableFile>* out) override;
  StatusCode ReadFile(const std::string& path, Bytes* out) override;
  StatusCode ReadRange(const std::string& path, uint64_t offset, size_t length,
                       Bytes* out) override;
  StatusCode FileSize(const std::string& path, uint64_t* size) override;
  StatusCode RemoveFile(const std::string& path) override;
  StatusCode TruncateFile(const std::string& path, uint64_t size) override;
  bool FileExists(const std::string& path) override;

  // Call only while the store is quiescent (no in-flight appends or
  // committer batches): the reference is to live, lock-guarded state.
  const std::vector<EnvOp>& ops() const PAST_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return ops_;
  }

  // Reconstructs the post-crash directory contents into `target_dir`
  // (created if needed, assumed empty) using `base` for the writes.
  StatusCode Materialize(const std::string& target_dir,
                         const MaterializeOptions& options) const
      PAST_EXCLUDES(mu_);

 private:
  friend class FaultWritableFile;

  std::string Rel(const std::string& path) const;
  // Appends a write op at the file's current size (looked up under mu_, so
  // concurrent appenders to different files never race on the size model).
  void RecordAppend(const std::string& rel, ByteSpan data) PAST_EXCLUDES(mu_);
  void RecordSync(const std::string& rel) PAST_EXCLUDES(mu_);

  Env* base_;
  const std::string base_dir_;
  // Guards the op log and size model: a group-commit committer records syncs
  // concurrently with serving-thread appends.
  mutable Mutex mu_;
  std::vector<EnvOp> ops_ PAST_GUARDED_BY(mu_);
  // Model of each file's current size, so appends know their offset.
  std::unordered_map<std::string, uint64_t> sizes_ PAST_GUARDED_BY(mu_);
};

}  // namespace past

