#include "src/diskstore/block_cache.h"

#include "src/common/check.h"

namespace past {

BlockCache::BlockCache(uint64_t capacity_bytes, MetricsRegistry* metrics)
    : capacity_(capacity_bytes) {
  if (metrics != nullptr) {
    m_hits_ = metrics->GetCounter("disk.cache.hits");
    m_misses_ = metrics->GetCounter("disk.cache.misses");
    m_insertions_ = metrics->GetCounter("disk.cache.insertions");
    m_evictions_ = metrics->GetCounter("disk.cache.evictions");
    m_used_bytes_ = metrics->GetGauge("disk.cache.used_bytes");
  }
}

double BlockCache::PriorityFor(size_t size) const {
  // H = L + cost/size with uniform cost: small values earn higher priority.
  return inflation_ + 1.0 / static_cast<double>(size == 0 ? 1 : size);
}

bool BlockCache::Get(const U160& key, Bytes* out) {
  MutexLock lock(&mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    if (m_misses_ != nullptr) {
      m_misses_->Inc();
    }
    return false;
  }
  ++stats_.hits;
  if (m_hits_ != nullptr) {
    m_hits_->Inc();
  }
  // Refresh priority against the current inflation floor.
  queue_.erase(it->second.queue_pos);
  it->second.queue_pos =
      queue_.emplace(PriorityFor(it->second.value.size()), key);
  *out = it->second.value;
  return true;
}

void BlockCache::Insert(const U160& key, ByteSpan value) {
  if (value.size() > capacity_) {
    return;
  }
  MutexLock lock(&mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    AccountUsed(-static_cast<int64_t>(it->second.value.size()));
    queue_.erase(it->second.queue_pos);
    entries_.erase(it);
  }
  while (used_ + value.size() > capacity_ && !entries_.empty()) {
    EvictOne();
  }
  Entry entry;
  entry.value.assign(value.begin(), value.end());
  entry.queue_pos = queue_.emplace(PriorityFor(value.size()), key);
  AccountUsed(static_cast<int64_t>(value.size()));
  entries_.emplace(key, std::move(entry));
  ++stats_.insertions;
  if (m_insertions_ != nullptr) {
    m_insertions_->Inc();
  }
}

void BlockCache::Erase(const U160& key) {
  MutexLock lock(&mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return;
  }
  AccountUsed(-static_cast<int64_t>(it->second.value.size()));
  queue_.erase(it->second.queue_pos);
  entries_.erase(it);
}

void BlockCache::EvictOne() {
  PAST_CHECK(!entries_.empty());
  auto victim = queue_.begin();
  // Raise the inflation floor to the evicted priority so future entries
  // compete fairly against long-lived popular ones.
  inflation_ = victim->first;
  auto it = entries_.find(victim->second);
  PAST_CHECK(it != entries_.end());
  AccountUsed(-static_cast<int64_t>(it->second.value.size()));
  entries_.erase(it);
  queue_.erase(victim);
  ++stats_.evictions;
  if (m_evictions_ != nullptr) {
    m_evictions_->Inc();
  }
}

void BlockCache::AccountUsed(int64_t delta) {
  used_ = static_cast<uint64_t>(static_cast<int64_t>(used_) + delta);
  if (m_used_bytes_ != nullptr) {
    m_used_bytes_->Add(static_cast<double>(delta));
  }
}

BlockCache::Stats BlockCache::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

uint64_t BlockCache::used_bytes() const {
  MutexLock lock(&mu_);
  return used_;
}

size_t BlockCache::entry_count() const {
  MutexLock lock(&mu_);
  return entries_.size();
}

}  // namespace past
