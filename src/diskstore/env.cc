#include "src/diskstore/env.h"

#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <system_error>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

namespace past {
namespace {

namespace fs = std::filesystem;

class PosixWritableFile : public WritableFile {
 public:
  explicit PosixWritableFile(int fd) : fd_(fd) {}
  ~PosixWritableFile() override {
    if (fd_ >= 0) {
      ::close(fd_);
    }
  }

  StatusCode Append(ByteSpan data) override {
    const uint8_t* p = data.data();
    size_t n = data.size();
    while (n > 0) {
      ssize_t written = ::write(fd_, p, n);
      if (written < 0) {
        if (errno == EINTR) {
          continue;
        }
        return StatusCode::kUnavailable;
      }
      p += written;
      n -= static_cast<size_t>(written);
    }
    return StatusCode::kOk;
  }

  StatusCode Sync() override {
    return ::fsync(fd_) == 0 ? StatusCode::kOk : StatusCode::kUnavailable;
  }

  StatusCode Close() override {
    if (fd_ < 0) {
      return StatusCode::kOk;
    }
    int rc = ::close(fd_);
    fd_ = -1;
    return rc == 0 ? StatusCode::kOk : StatusCode::kUnavailable;
  }

 private:
  int fd_;
};

class PosixEnv : public Env {
 public:
  StatusCode CreateDirs(const std::string& dir) override {
    std::error_code ec;
    fs::create_directories(dir, ec);
    return ec ? StatusCode::kUnavailable : StatusCode::kOk;
  }

  StatusCode ListDir(const std::string& dir,
                     std::vector<std::string>* names) override {
    names->clear();
    std::error_code ec;
    fs::directory_iterator it(dir, ec);
    if (ec) {
      return StatusCode::kUnavailable;
    }
    for (const auto& entry : it) {
      if (entry.is_regular_file(ec)) {
        names->push_back(entry.path().filename().string());
      }
    }
    return StatusCode::kOk;
  }

  StatusCode NewWritableFile(const std::string& path,
                             std::unique_ptr<WritableFile>* out) override {
    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd < 0) {
      return StatusCode::kUnavailable;
    }
    *out = std::make_unique<PosixWritableFile>(fd);
    return StatusCode::kOk;
  }

  StatusCode ReadFile(const std::string& path, Bytes* out) override {
    uint64_t size = 0;
    StatusCode status = FileSize(path, &size);
    if (status != StatusCode::kOk) {
      return status;
    }
    return ReadRange(path, 0, static_cast<size_t>(size), out);
  }

  StatusCode ReadRange(const std::string& path, uint64_t offset, size_t length,
                       Bytes* out) override {
    out->clear();
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      return StatusCode::kUnavailable;
    }
    out->resize(length);
    size_t done = 0;
    while (done < length) {
      ssize_t n = ::pread(fd, out->data() + done, length - done,
                          static_cast<off_t>(offset + done));
      if (n < 0 && errno == EINTR) {
        continue;
      }
      if (n <= 0) {
        ::close(fd);
        out->clear();
        // A short read means the caller's idea of the file is stale.
        return n == 0 ? StatusCode::kOutOfRange : StatusCode::kUnavailable;
      }
      done += static_cast<size_t>(n);
    }
    ::close(fd);
    return StatusCode::kOk;
  }

  StatusCode FileSize(const std::string& path, uint64_t* size) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) {
      return errno == ENOENT ? StatusCode::kNotFound : StatusCode::kUnavailable;
    }
    *size = static_cast<uint64_t>(st.st_size);
    return StatusCode::kOk;
  }

  StatusCode RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) {
      return errno == ENOENT ? StatusCode::kNotFound : StatusCode::kUnavailable;
    }
    return StatusCode::kOk;
  }

  StatusCode TruncateFile(const std::string& path, uint64_t size) override {
    return ::truncate(path.c_str(), static_cast<off_t>(size)) == 0
               ? StatusCode::kOk
               : StatusCode::kUnavailable;
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }
};

}  // namespace

Env* Env::Default() {
  // lint:allow-global-state stateless singleton of syscall wrappers
  static PosixEnv env;
  return &env;
}

}  // namespace past
