// ShardedDiskStore — N independent DiskStore segment logs behind one
// DiskStore-shaped API, plus the concurrency machinery the serving hot path
// needs: per-shard group commit, background compaction, and a bounded read
// cache.
//
// Sharding. Keys route to shard CRC32C(key) % shard_count — a fixed,
// platform-stable function of the key bytes, so a directory always reopens
// with the layout it was written under. shard_count == 1 keeps the legacy
// layout (segment files directly in the store directory, byte-identical to
// a plain DiskStore); shard_count == N > 1 nests shards in subdirectories
// named "shard-<N>-<i>". The count is part of the name so layouts with
// different counts never collide, which makes migration restartable:
// opening a directory whose on-disk count differs from the requested one
// rewrites every record into the new layout behind "migrate-to-<N>" /
// "migrate-done-<N>" marker files (target dirty / target complete), so a
// crash at any point either keeps the intact source or the completed
// target, never neither.
//
// Group commit (options.group_commit). Appends run under the shard mutex
// with fsync disabled, then wait until the shard's committer thread has
// fsynced a batch covering their sequence number. The committer coalesces
// everything appended since the last fsync into one batch, waiting up to
// commit_delay_us for more appenders to join while the batch is smaller
// than commit_batch_max. Every Put/Remove is durable when it returns —
// sync_every=1 semantics at one fsync per batch instead of per append.
//
// Background compaction (options.background_compaction). Appends never
// compact inline; when a shard crosses the garbage thresholds it is queued
// (deduplicated) to a compactor thread that locks just that shard, so a
// compaction pause stalls one shard instead of landing in every insert's
// latency. The pause is observable as disk.compact.pause_us.
//
// Both threads are off by default; without them the store is as
// single-threaded and deterministic as a plain DiskStore, and the metrics
// registry is passed through to the shards so existing disk.* instruments
// behave identically. With either thread on, shards run without a registry
// and this layer observes its own instruments under a dedicated mutex
// (registry instruments are not thread-safe).
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/status.h"
#include "src/common/u160.h"
#include "src/diskstore/block_cache.h"
#include "src/diskstore/disk_store.h"
#include "src/obs/metrics.h"

namespace past {

class ShardedDiskStore {
 public:
  // Directory-name space for shard layouts; shard_count is clamped to this.
  static constexpr uint32_t kMaxShards = 64;

  // Routing function, exposed so tests can pin the on-disk contract.
  static uint32_t ShardIndex(const U160& key, uint32_t shard_count);

  // Opens (creating, and if the on-disk layout has a different shard count,
  // migrating) the store in `dir`, then starts the committer/compactor
  // threads the options ask for.
  static Result<std::unique_ptr<ShardedDiskStore>> Open(
      const std::string& dir, const DiskStoreOptions& options);
  ~ShardedDiskStore();

  ShardedDiskStore(const ShardedDiskStore&) = delete;
  ShardedDiskStore& operator=(const ShardedDiskStore&) = delete;

  // --- file keyspace (same contract as DiskStore) -----------------------------
  StatusCode Put(const U160& key, ByteSpan value);
  StatusCode Remove(const U160& key);
  bool Has(const U160& key) const;
  Result<Bytes> Get(const U160& key) const;
  std::vector<U160> Keys() const;
  size_t key_count() const;

  // --- pointer keyspace -------------------------------------------------------
  StatusCode PutPointer(const U160& key, ByteSpan value);
  StatusCode RemovePointer(const U160& key);
  bool HasPointer(const U160& key) const;
  Result<Bytes> GetPointer(const U160& key) const;
  std::vector<U160> PointerKeys() const;
  size_t pointer_count() const;

  // Makes every acknowledged append durable, across all shards.
  StatusCode Sync();
  // Compacts every shard unconditionally.
  StatusCode Compact();

  using Stats = DiskStore::Stats;
  // Aggregated over the shards (by value: the shards keep mutating).
  Stats stats() const;

  struct CommitStats {
    uint64_t batches = 0;          // committer fsync batches
    uint64_t batched_appends = 0;  // appends those batches made durable
    uint64_t background_compactions = 0;
  };
  CommitStats commit_stats() const;

  uint32_t shard_count() const { return options_.shard_count; }
  const BlockCache* cache() const { return cache_.get(); }
  const std::string& dir() const { return dir_; }

 private:
  struct Shard {
    mutable Mutex mu;
    std::unique_ptr<DiskStore> store PAST_GUARDED_BY(mu);
    // Group-commit state: appenders take a sequence number and wait until
    // the committer's durable frontier covers it.
    uint64_t appended_seq PAST_GUARDED_BY(mu) = 0;
    uint64_t durable_seq PAST_GUARDED_BY(mu) = 0;
    // Sticky: the first fsync/compaction failure poisons the shard and every
    // later mutation reports it (acknowledged-durable must stay true).
    StatusCode error PAST_GUARDED_BY(mu) = StatusCode::kOk;
    bool stop PAST_GUARDED_BY(mu) = false;
    bool compact_queued PAST_GUARDED_BY(mu) = false;
    CondVar work_cv;     // appends arrived (or stop): wakes the committer
    CondVar durable_cv;  // durable_seq advanced (or error): wakes appenders
    std::thread committer;
  };

  ShardedDiskStore(std::string dir, const DiskStoreOptions& options);

  std::string ShardDir(uint32_t count, uint32_t index) const;
  std::string MarkerPath(const char* kind, uint32_t count) const;

  // Layout discovery / migration (all single-threaded, called from Open
  // before any worker thread exists).
  StatusCode OpenShards();
  Result<uint32_t> DetectExistingLayout();
  StatusCode CleanupCrashedMigration();
  StatusCode MigrateLayout(uint32_t from, uint32_t to);
  StatusCode DeleteLayoutFiles(uint32_t count);
  bool DirHasSegments(const std::string& dir) const;
  StatusCode WriteMarker(const std::string& path);
  void StartThreads();

  // Shared Put/Remove/pointer path: runs `fn` on the shard's store under its
  // mutex, invalidates the cache, waits out group commit, and hands the
  // shard to the compactor when it crosses the garbage thresholds.
  template <typename Fn>
  StatusCode Mutate(const U160& key, Fn&& fn);

  void MaybeScheduleCompaction(size_t idx, Shard* s) PAST_REQUIRES(s->mu);
  void CommitterLoop(Shard* s);
  void CompactorLoop();

  const std::string dir_;
  DiskStoreOptions options_;    // normalized (clamped counts, etc.)
  DiskStoreOptions shard_options_;  // what each shard's DiskStore gets
  Env* env_;
  const bool concurrent_;  // any worker thread (group commit / compaction)

  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<BlockCache> cache_;

  // Background-compaction handoff queue (shard indices, deduplicated via
  // Shard::compact_queued). Lock order: a serving thread holds its shard
  // mutex when enqueueing; the compactor never holds compact_mu_ while
  // taking a shard mutex, so there is no cycle.
  mutable Mutex compact_mu_;
  std::deque<size_t> compact_queue_ PAST_GUARDED_BY(compact_mu_);
  bool compact_stop_ PAST_GUARDED_BY(compact_mu_) = false;
  CondVar compact_cv_;
  std::thread compactor_;

  // Cross-thread instrument observations and their internal mirror. The
  // registry's Counter/LogHistogram are not thread-safe, so the committer
  // and compactor threads observe under this mutex. Registered whenever a
  // registry is present — also in single-threaded runs, where they stay
  // deterministically zero — so every --json dump has the same key set.
  mutable Mutex metrics_mu_;
  CommitStats commit_stats_ PAST_GUARDED_BY(metrics_mu_);
  Counter* m_commit_batches_ PAST_PT_GUARDED_BY(metrics_mu_) = nullptr;
  LogHistogram* m_commit_batch_size_ PAST_PT_GUARDED_BY(metrics_mu_) = nullptr;
  Counter* m_compact_background_ PAST_PT_GUARDED_BY(metrics_mu_) = nullptr;
  LogHistogram* m_compact_pause_us_ PAST_PT_GUARDED_BY(metrics_mu_) = nullptr;
};

}  // namespace past
