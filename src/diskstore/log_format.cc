#include "src/diskstore/log_format.h"

#include <cstdio>
#include <cstring>

#include "src/common/crc32c.h"

namespace past {
namespace {

void PutU32(Bytes* out, uint32_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 24));
}

void PutU64(Bytes* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

uint64_t GetU64(const uint8_t* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         static_cast<uint64_t>(GetU32(p + 4)) << 32;
}

}  // namespace

std::string SegmentFileName(uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "seg-%016llx.log",
                static_cast<unsigned long long>(seq));
  return buf;
}

bool ParseSegmentFileName(const std::string& name, uint64_t* seq) {
  if (name.size() != 24 || name.rfind("seg-", 0) != 0 ||
      name.compare(20, 4, ".log") != 0) {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = 4; i < 20; ++i) {
    char c = name[i];
    uint64_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
    value = value << 4 | digit;
  }
  *seq = value;
  return true;
}

Bytes EncodeSegmentHeader(uint64_t seq) {
  Bytes out;
  out.reserve(kSegmentHeaderSize);
  PutU32(&out, kSegmentMagic);
  PutU32(&out, kSegmentVersion);
  PutU64(&out, seq);
  return out;
}

bool DecodeSegmentHeader(ByteSpan data, uint64_t* seq) {
  if (data.size() < kSegmentHeaderSize || GetU32(data.data()) != kSegmentMagic ||
      GetU32(data.data() + 4) != kSegmentVersion) {
    return false;
  }
  *seq = GetU64(data.data() + 8);
  return true;
}

Bytes EncodeRecord(RecordType type, const U160& key, ByteSpan value) {
  const uint32_t len = static_cast<uint32_t>(kRecordBodyMinSize + value.size());
  Bytes out;
  out.reserve(kRecordPrefixSize + len);
  PutU32(&out, 0);  // crc placeholder
  PutU32(&out, len);
  out.push_back(static_cast<uint8_t>(type));
  out.insert(out.end(), key.bytes().begin(), key.bytes().end());
  out.insert(out.end(), value.begin(), value.end());
  const uint32_t crc = Crc32c(ByteSpan(out.data() + kRecordPrefixSize, len));
  out[0] = static_cast<uint8_t>(crc);
  out[1] = static_cast<uint8_t>(crc >> 8);
  out[2] = static_cast<uint8_t>(crc >> 16);
  out[3] = static_cast<uint8_t>(crc >> 24);
  return out;
}

ParseStatus ParseRecord(ByteSpan buf, size_t* offset, Record* out) {
  const size_t start = *offset;
  if (start == buf.size()) {
    return ParseStatus::kAtEnd;
  }
  if (buf.size() - start < kRecordPrefixSize) {
    return ParseStatus::kTruncated;
  }
  const uint8_t* p = buf.data() + start;
  const uint32_t expected_crc = GetU32(p);
  const uint32_t len = GetU32(p + 4);
  if (len < kRecordBodyMinSize) {
    // A body too short to hold type+key cannot be a record boundary; its CRC
    // could not have been computed over it, so treat it as corruption.
    return ParseStatus::kCorrupt;
  }
  if (buf.size() - start - kRecordPrefixSize < len) {
    return ParseStatus::kTruncated;
  }
  const uint8_t* body = p + kRecordPrefixSize;
  if (Crc32c(ByteSpan(body, len)) != expected_crc) {
    return ParseStatus::kCorrupt;
  }
  if (!IsValidRecordType(body[0])) {
    return ParseStatus::kCorrupt;
  }
  out->type = static_cast<RecordType>(body[0]);
  out->key = U160::FromBytes(ByteSpan(body + 1, U160::kBytes));
  out->value.assign(body + kRecordBodyMinSize, body + len);
  *offset = start + kRecordPrefixSize + len;
  return ParseStatus::kOk;
}

}  // namespace past
