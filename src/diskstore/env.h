// Filesystem abstraction for the disk storage engine.
//
// The engine never touches the OS directly: every file operation goes
// through an Env, so tests can substitute a FaultInjectionEnv (fault_env.h)
// that records the write stream and re-materializes it truncated at an
// arbitrary crash point. The default Env is a thin POSIX/stdio wrapper.
//
// All operations return StatusCode (kUnavailable for I/O errors) — disk
// failures are runtime conditions, never invariant violations.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"

namespace past {

// A sequential append-only file handle. Append order defines the on-disk
// byte order; Sync makes everything appended so far durable.
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual StatusCode Append(ByteSpan data) = 0;
  virtual StatusCode Sync() = 0;
  virtual StatusCode Close() = 0;
};

class Env {
 public:
  virtual ~Env() = default;

  // Creates `dir` and any missing parents; kOk if it already exists.
  virtual StatusCode CreateDirs(const std::string& dir) = 0;
  // Names (not paths) of regular files directly inside `dir`.
  virtual StatusCode ListDir(const std::string& dir,
                             std::vector<std::string>* names) = 0;
  // Opens `path` for appending, creating it if absent (existing bytes are
  // preserved — recovery reopens the active segment).
  virtual StatusCode NewWritableFile(const std::string& path,
                                     std::unique_ptr<WritableFile>* out) = 0;
  virtual StatusCode ReadFile(const std::string& path, Bytes* out) = 0;
  virtual StatusCode ReadRange(const std::string& path, uint64_t offset,
                               size_t length, Bytes* out) = 0;
  virtual StatusCode FileSize(const std::string& path, uint64_t* size) = 0;
  virtual StatusCode RemoveFile(const std::string& path) = 0;
  // Shrinks `path` to `size` bytes (used to cut a torn tail off a log).
  virtual StatusCode TruncateFile(const std::string& path, uint64_t size) = 0;
  virtual bool FileExists(const std::string& path) = 0;

  // The process-wide POSIX environment.
  static Env* Default();
};

}  // namespace past

