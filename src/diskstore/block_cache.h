// BlockCache — a bounded, internally-synchronized value cache in front of
// the disk engine's reads.
//
// The sharded engine consults it on Get() before issuing an env ReadRange,
// fills it on miss, and invalidates on Put/Remove so a cached value can
// never be stale. Eviction is GreedyDual-Size with uniform cost — the same
// policy the storage-layer unused-capacity cache uses (src/storage/cache.h):
// each entry carries H = L + 1/size, eviction removes the minimum-H entry
// and raises the floor L to that value, so small and recently-touched
// values survive longest.
//
// Unlike the storage-layer Cache this one is thread-safe: serving threads
// hit it concurrently from different shards. All state is guarded by one
// past::Mutex — the critical sections are map operations, orders of
// magnitude cheaper than the disk read a hit avoids. Lock order: a caller
// may hold its shard mutex when calling in; the cache never calls out, so
// shard-mutex -> cache-mutex is the only order and cannot deadlock.
#pragma once

#include <map>
#include <unordered_map>

#include "src/common/mutex.h"
#include "src/common/u160.h"
#include "src/obs/metrics.h"

namespace past {

class BlockCache {
 public:
  // With a registry, hit/miss/insert/evict counts and used bytes are also
  // mirrored into the shared "disk.cache.*" instruments. The instrument
  // pointers are written once here and read-only afterwards; the values
  // they point at are guarded by mu_ like the rest of the cache state.
  BlockCache(uint64_t capacity_bytes, MetricsRegistry* metrics);

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  // Copies the cached value into *out and refreshes its priority. False on
  // miss.
  bool Get(const U160& key, Bytes* out) PAST_EXCLUDES(mu_);

  // Caches a value (replacing any previous entry for the key), evicting
  // minimum-priority entries until it fits. Values larger than the whole
  // cache are ignored.
  void Insert(const U160& key, ByteSpan value) PAST_EXCLUDES(mu_);

  // Drops the entry if present; called on every overwrite and remove so the
  // cache never serves stale bytes.
  void Erase(const U160& key) PAST_EXCLUDES(mu_);

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
  };
  Stats stats() const PAST_EXCLUDES(mu_);
  uint64_t used_bytes() const PAST_EXCLUDES(mu_);
  size_t entry_count() const PAST_EXCLUDES(mu_);
  uint64_t capacity_bytes() const { return capacity_; }

 private:
  struct Entry {
    Bytes value;
    std::multimap<double, U160>::iterator queue_pos;
  };

  double PriorityFor(size_t size) const PAST_REQUIRES(mu_);
  void EvictOne() PAST_REQUIRES(mu_);
  void AccountUsed(int64_t delta) PAST_REQUIRES(mu_);

  const uint64_t capacity_;

  mutable Mutex mu_;
  uint64_t used_ PAST_GUARDED_BY(mu_) = 0;
  double inflation_ PAST_GUARDED_BY(mu_) = 0.0;  // GD-S floor L
  std::unordered_map<U160, Entry, U160Hash> entries_ PAST_GUARDED_BY(mu_);
  std::multimap<double, U160> queue_ PAST_GUARDED_BY(mu_);  // H -> key, min first
  Stats stats_ PAST_GUARDED_BY(mu_);

  // Shared registry instruments; null when metrics are off. The registry's
  // Counter/Gauge are not thread-safe, so every Inc/Add happens under mu_.
  Counter* m_hits_ PAST_PT_GUARDED_BY(mu_) = nullptr;
  Counter* m_misses_ PAST_PT_GUARDED_BY(mu_) = nullptr;
  Counter* m_insertions_ PAST_PT_GUARDED_BY(mu_) = nullptr;
  Counter* m_evictions_ PAST_PT_GUARDED_BY(mu_) = nullptr;
  Gauge* m_used_bytes_ PAST_PT_GUARDED_BY(mu_) = nullptr;
};

}  // namespace past
