#include "src/diskstore/sharded_store.h"

#include <chrono>
#include <cstdlib>

#include "src/common/check.h"
#include "src/common/crc32c.h"
#include "src/diskstore/log_format.h"

namespace past {

namespace {

constexpr char kMigrateToPrefix[] = "migrate-to-";
constexpr char kMigrateDonePrefix[] = "migrate-done-";

// Parses "<prefix><decimal count>" marker names; 0 when it does not match.
uint32_t ParseMarker(const std::string& name, const char* prefix) {
  const size_t len = std::char_traits<char>::length(prefix);
  if (name.compare(0, len, prefix) != 0 || name.size() == len) {
    return 0;
  }
  uint32_t value = 0;
  for (size_t i = len; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') {
      return 0;
    }
    value = value * 10 + static_cast<uint32_t>(name[i] - '0');
    if (value > ShardedDiskStore::kMaxShards) {
      return 0;
    }
  }
  return value;
}

}  // namespace

uint32_t ShardedDiskStore::ShardIndex(const U160& key, uint32_t shard_count) {
  if (shard_count <= 1) {
    return 0;
  }
  // CRC32C of the raw key bytes: fixed for all time, independent of the
  // process's hash seeds, so a directory reopens under the layout it was
  // written with.
  const auto& bytes = key.bytes();
  return Crc32c(ByteSpan(bytes.data(), bytes.size())) % shard_count;
}

ShardedDiskStore::ShardedDiskStore(std::string dir,
                                   const DiskStoreOptions& options)
    : dir_(std::move(dir)),
      options_(options),
      env_(options.env != nullptr ? options.env : Env::Default()),
      concurrent_(options.group_commit || options.background_compaction) {
  if (options_.shard_count < 1) {
    options_.shard_count = 1;
  }
  if (options_.shard_count > kMaxShards) {
    options_.shard_count = kMaxShards;
  }
  if (options_.commit_batch_max == 0) {
    options_.commit_batch_max = 1;
  }
  options_.env = env_;

  shard_options_ = options_;
  shard_options_.shard_count = 1;
  shard_options_.group_commit = false;
  shard_options_.background_compaction = false;
  shard_options_.cache_bytes = 0;
  // With worker threads, shards observe nothing: the registry's instruments
  // are not thread-safe, and this layer reports through metrics_mu_ instead.
  shard_options_.metrics = concurrent_ ? nullptr : options_.metrics;
  // Group commit owns fsync scheduling; inline sync_every would reintroduce
  // the per-append fsync the batching exists to amortize.
  if (options_.group_commit) {
    shard_options_.sync_every = 0;
  }
  shard_options_.inline_compaction = !options_.background_compaction;

  if (options_.cache_bytes > 0) {
    cache_ = std::make_unique<BlockCache>(options_.cache_bytes, options_.metrics);
  }
  if (options_.metrics != nullptr) {
    m_commit_batches_ = options_.metrics->GetCounter("disk.commit.batches");
    m_commit_batch_size_ =
        options_.metrics->GetLogHistogram("disk.commit.batch_size");
    m_compact_background_ =
        options_.metrics->GetCounter("disk.compact.background");
    m_compact_pause_us_ =
        options_.metrics->GetLogHistogram("disk.compact.pause_us");
  }
}

ShardedDiskStore::~ShardedDiskStore() {
  if (compactor_.joinable()) {
    {
      MutexLock lock(&compact_mu_);
      compact_stop_ = true;
      compact_cv_.NotifyAll();
    }
    compactor_.join();
  }
  for (auto& shard : shards_) {
    if (shard->committer.joinable()) {
      {
        MutexLock lock(&shard->mu);
        shard->stop = true;
        shard->work_cv.NotifyAll();
      }
      // The committer drains every pending append before exiting, so clean
      // shutdown never loses an acknowledged write.
      shard->committer.join();
    }
  }
}

Result<std::unique_ptr<ShardedDiskStore>> ShardedDiskStore::Open(
    const std::string& dir, const DiskStoreOptions& options) {
  std::unique_ptr<ShardedDiskStore> store(new ShardedDiskStore(dir, options));
  StatusCode status = store->OpenShards();
  if (status != StatusCode::kOk) {
    return status;
  }
  store->StartThreads();
  return store;
}

// --- layout ------------------------------------------------------------------

std::string ShardedDiskStore::ShardDir(uint32_t count, uint32_t index) const {
  return dir_ + "/shard-" + std::to_string(count) + "-" + std::to_string(index);
}

std::string ShardedDiskStore::MarkerPath(const char* kind,
                                         uint32_t count) const {
  return dir_ + "/migrate-" + kind + "-" + std::to_string(count);
}

bool ShardedDiskStore::DirHasSegments(const std::string& dir) const {
  std::vector<std::string> names;
  if (env_->ListDir(dir, &names) != StatusCode::kOk) {
    return false;
  }
  uint64_t seq = 0;
  for (const std::string& name : names) {
    if (ParseSegmentFileName(name, &seq)) {
      return true;
    }
  }
  return false;
}

StatusCode ShardedDiskStore::DeleteLayoutFiles(uint32_t count) {
  if (count == 1) {
    std::vector<std::string> names;
    StatusCode status = env_->ListDir(dir_, &names);
    if (status != StatusCode::kOk) {
      return status;
    }
    uint64_t seq = 0;
    for (const std::string& name : names) {
      if (ParseSegmentFileName(name, &seq)) {
        IgnoreStatus(env_->RemoveFile(dir_ + "/" + name));
      }
    }
    return StatusCode::kOk;
  }
  for (uint32_t i = 0; i < count; ++i) {
    std::vector<std::string> names;
    if (env_->ListDir(ShardDir(count, i), &names) != StatusCode::kOk) {
      continue;  // dir never created (or already gone)
    }
    uint64_t seq = 0;
    for (const std::string& name : names) {
      if (ParseSegmentFileName(name, &seq)) {
        IgnoreStatus(env_->RemoveFile(ShardDir(count, i) + "/" + name));
      }
    }
  }
  return StatusCode::kOk;
}

StatusCode ShardedDiskStore::WriteMarker(const std::string& path) {
  std::unique_ptr<WritableFile> file;
  StatusCode status = env_->NewWritableFile(path, &file);
  if (status != StatusCode::kOk) {
    return status;
  }
  status = file->Sync();
  if (status == StatusCode::kOk) {
    status = file->Close();
  }
  return status;
}

StatusCode ShardedDiskStore::CleanupCrashedMigration() {
  std::vector<std::string> names;
  StatusCode status = env_->ListDir(dir_, &names);
  if (status != StatusCode::kOk) {
    return status;
  }
  uint32_t to = 0;
  uint32_t done = 0;
  for (const std::string& name : names) {
    if (uint32_t t = ParseMarker(name, kMigrateToPrefix); t != 0) {
      to = t;
    }
    if (uint32_t d = ParseMarker(name, kMigrateDonePrefix); d != 0) {
      done = d;
    }
  }
  if (done != 0) {
    // The "done" marker means the target layout is complete and durable; a
    // crash interrupted the source teardown. Finish it: drop every other
    // layout, then both markers.
    for (uint32_t c = 1; c <= kMaxShards; ++c) {
      if (c == done) {
        continue;
      }
      if (c > 1 && !env_->FileExists(ShardDir(c, 0))) {
        continue;
      }
      status = DeleteLayoutFiles(c);
      if (status != StatusCode::kOk) {
        return status;
      }
    }
    if (to != 0) {
      IgnoreStatus(env_->RemoveFile(MarkerPath("to", to)));
    }
    IgnoreStatus(env_->RemoveFile(MarkerPath("done", done)));
    return StatusCode::kOk;
  }
  if (to != 0) {
    // Crash mid-rewrite: the target is a partial copy, the source is still
    // whole. Drop the partial target and pretend the migration never began.
    status = DeleteLayoutFiles(to);
    if (status != StatusCode::kOk) {
      return status;
    }
    IgnoreStatus(env_->RemoveFile(MarkerPath("to", to)));
  }
  return StatusCode::kOk;
}

Result<uint32_t> ShardedDiskStore::DetectExistingLayout() {
  if (DirHasSegments(dir_)) {
    return uint32_t{1};
  }
  for (uint32_t c = 2; c <= kMaxShards; ++c) {
    if (!env_->FileExists(ShardDir(c, 0))) {
      continue;
    }
    for (uint32_t i = 0; i < c; ++i) {
      if (DirHasSegments(ShardDir(c, i))) {
        return c;
      }
    }
  }
  return uint32_t{0};  // fresh directory
}

StatusCode ShardedDiskStore::MigrateLayout(uint32_t from, uint32_t to) {
  // Marker first: until the rewrite completes, the target layout is dirty
  // and a crash-recovery pass must discard it.
  StatusCode status = WriteMarker(MarkerPath("to", to));
  if (status != StatusCode::kOk) {
    return status;
  }
  DiskStoreOptions mopts = shard_options_;
  mopts.metrics = nullptr;
  mopts.sync_every = 0;
  mopts.inline_compaction = false;

  std::vector<std::unique_ptr<DiskStore>> sources;
  for (uint32_t i = 0; i < from; ++i) {
    const std::string sdir = from == 1 ? dir_ : ShardDir(from, i);
    Result<std::unique_ptr<DiskStore>> opened = DiskStore::Open(sdir, mopts);
    if (!opened.ok()) {
      return opened.status();
    }
    sources.push_back(std::move(opened.value()));
  }
  std::vector<std::unique_ptr<DiskStore>> targets;
  for (uint32_t i = 0; i < to; ++i) {
    const std::string tdir = to == 1 ? dir_ : ShardDir(to, i);
    Result<std::unique_ptr<DiskStore>> opened = DiskStore::Open(tdir, mopts);
    if (!opened.ok()) {
      return opened.status();
    }
    targets.push_back(std::move(opened.value()));
  }

  for (const auto& source : sources) {
    for (const U160& key : source->Keys()) {
      Result<Bytes> value = source->Get(key);
      if (!value.ok()) {
        return value.status();
      }
      status = targets[ShardIndex(key, to)]->Put(
          key, ByteSpan(value.value().data(), value.value().size()));
      if (status != StatusCode::kOk) {
        return status;
      }
    }
    for (const U160& key : source->PointerKeys()) {
      Result<Bytes> value = source->GetPointer(key);
      if (!value.ok()) {
        return value.status();
      }
      status = targets[ShardIndex(key, to)]->PutPointer(
          key, ByteSpan(value.value().data(), value.value().size()));
      if (status != StatusCode::kOk) {
        return status;
      }
    }
  }
  for (const auto& target : targets) {
    status = target->Sync();
    if (status != StatusCode::kOk) {
      return status;
    }
  }
  // Close everything before touching files underneath them.
  targets.clear();
  sources.clear();

  // Commit point: once "done" is durable the target is the store. Only then
  // is it safe to delete the source.
  status = WriteMarker(MarkerPath("done", to));
  if (status != StatusCode::kOk) {
    return status;
  }
  IgnoreStatus(env_->RemoveFile(MarkerPath("to", to)));
  status = DeleteLayoutFiles(from);
  if (status != StatusCode::kOk) {
    return status;
  }
  IgnoreStatus(env_->RemoveFile(MarkerPath("done", to)));
  return StatusCode::kOk;
}

StatusCode ShardedDiskStore::OpenShards() {
  StatusCode status = env_->CreateDirs(dir_);
  if (status != StatusCode::kOk) {
    return status;
  }
  status = CleanupCrashedMigration();
  if (status != StatusCode::kOk) {
    return status;
  }
  Result<uint32_t> existing = DetectExistingLayout();
  if (!existing.ok()) {
    return existing.status();
  }
  if (existing.value() != 0 && existing.value() != options_.shard_count) {
    status = MigrateLayout(existing.value(), options_.shard_count);
    if (status != StatusCode::kOk) {
      return status;
    }
  }
  for (uint32_t i = 0; i < options_.shard_count; ++i) {
    const std::string sdir =
        options_.shard_count == 1 ? dir_ : ShardDir(options_.shard_count, i);
    Result<std::unique_ptr<DiskStore>> opened =
        DiskStore::Open(sdir, shard_options_);
    if (!opened.ok()) {
      return opened.status();
    }
    auto shard = std::make_unique<Shard>();
    {
      MutexLock lock(&shard->mu);
      shard->store = std::move(opened.value());
    }
    shards_.push_back(std::move(shard));
  }
  return StatusCode::kOk;
}

void ShardedDiskStore::StartThreads() {
  if (options_.group_commit) {
    for (auto& shard : shards_) {
      shard->committer =
          std::thread(&ShardedDiskStore::CommitterLoop, this, shard.get());
    }
  }
  if (options_.background_compaction) {
    compactor_ = std::thread(&ShardedDiskStore::CompactorLoop, this);
  }
}

// --- serving path ------------------------------------------------------------

template <typename Fn>
StatusCode ShardedDiskStore::Mutate(const U160& key, Fn&& fn) {
  const size_t idx = ShardIndex(key, options_.shard_count);
  Shard& s = *shards_[idx];
  MutexLock lock(&s.mu);
  if (s.error != StatusCode::kOk) {
    return s.error;
  }
  StatusCode status = fn(s.store.get());
  if (status != StatusCode::kOk) {
    return status;  // e.g. kNotFound from Remove — nothing was appended
  }
  if (cache_ != nullptr) {
    // Invalidate under the shard mutex, so no concurrent Get on this key can
    // re-fill the cache with the old value in between.
    cache_->Erase(key);
  }
  if (options_.group_commit) {
    const uint64_t my_seq = ++s.appended_seq;
    s.work_cv.NotifyOne();
    while (s.durable_seq < my_seq && s.error == StatusCode::kOk) {
      s.durable_cv.Wait(&s.mu);
    }
    if (s.durable_seq < my_seq) {
      return s.error;  // the committer's fsync failed; not durable
    }
  }
  MaybeScheduleCompaction(idx, &s);
  return StatusCode::kOk;
}

void ShardedDiskStore::MaybeScheduleCompaction(size_t idx, Shard* s) {
  if (!options_.background_compaction || s->compact_queued ||
      !s->store->NeedsCompaction()) {
    return;
  }
  s->compact_queued = true;
  MutexLock lock(&compact_mu_);
  compact_queue_.push_back(idx);
  compact_cv_.NotifyOne();
}

StatusCode ShardedDiskStore::Put(const U160& key, ByteSpan value) {
  return Mutate(key,
                [&](DiskStore* store) { return store->Put(key, value); });
}

StatusCode ShardedDiskStore::Remove(const U160& key) {
  return Mutate(key, [&](DiskStore* store) { return store->Remove(key); });
}

StatusCode ShardedDiskStore::PutPointer(const U160& key, ByteSpan value) {
  return Mutate(
      key, [&](DiskStore* store) { return store->PutPointer(key, value); });
}

StatusCode ShardedDiskStore::RemovePointer(const U160& key) {
  return Mutate(key,
                [&](DiskStore* store) { return store->RemovePointer(key); });
}

bool ShardedDiskStore::Has(const U160& key) const {
  Shard& s = *shards_[ShardIndex(key, options_.shard_count)];
  MutexLock lock(&s.mu);
  return s.store->Has(key);
}

Result<Bytes> ShardedDiskStore::Get(const U160& key) const {
  Shard& s = *shards_[ShardIndex(key, options_.shard_count)];
  MutexLock lock(&s.mu);
  if (cache_ != nullptr) {
    Bytes cached;
    if (cache_->Get(key, &cached)) {
      return cached;
    }
  }
  Result<Bytes> value = s.store->Get(key);
  if (value.ok() && cache_ != nullptr) {
    // Fill happens under the same shard mutex as invalidation, so a cached
    // value always matches the index the moment it is inserted.
    cache_->Insert(key,
                   ByteSpan(value.value().data(), value.value().size()));
  }
  return value;
}

bool ShardedDiskStore::HasPointer(const U160& key) const {
  Shard& s = *shards_[ShardIndex(key, options_.shard_count)];
  MutexLock lock(&s.mu);
  return s.store->HasPointer(key);
}

Result<Bytes> ShardedDiskStore::GetPointer(const U160& key) const {
  Shard& s = *shards_[ShardIndex(key, options_.shard_count)];
  MutexLock lock(&s.mu);
  return s.store->GetPointer(key);
}

std::vector<U160> ShardedDiskStore::Keys() const {
  std::vector<U160> out;
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    std::vector<U160> keys = shard->store->Keys();
    out.insert(out.end(), keys.begin(), keys.end());
  }
  return out;
}

std::vector<U160> ShardedDiskStore::PointerKeys() const {
  std::vector<U160> out;
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    std::vector<U160> keys = shard->store->PointerKeys();
    out.insert(out.end(), keys.begin(), keys.end());
  }
  return out;
}

size_t ShardedDiskStore::key_count() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    n += shard->store->key_count();
  }
  return n;
}

size_t ShardedDiskStore::pointer_count() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    n += shard->store->pointer_count();
  }
  return n;
}

StatusCode ShardedDiskStore::Sync() {
  StatusCode first = StatusCode::kOk;
  for (auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    if (shard->error != StatusCode::kOk) {
      if (first == StatusCode::kOk) {
        first = shard->error;
      }
      continue;
    }
    StatusCode status = shard->store->Sync();
    if (status != StatusCode::kOk) {
      shard->error = status;
      shard->durable_cv.NotifyAll();
      if (first == StatusCode::kOk) {
        first = status;
      }
      continue;
    }
    if (options_.group_commit) {
      // Everything appended so far just hit disk; release any waiters.
      shard->durable_seq = shard->appended_seq;
      shard->durable_cv.NotifyAll();
    }
  }
  return first;
}

StatusCode ShardedDiskStore::Compact() {
  StatusCode first = StatusCode::kOk;
  for (auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    if (shard->error != StatusCode::kOk) {
      if (first == StatusCode::kOk) {
        first = shard->error;
      }
      continue;
    }
    StatusCode status = shard->store->Compact();
    if (status != StatusCode::kOk) {
      shard->error = status;
      shard->durable_cv.NotifyAll();
      if (first == StatusCode::kOk) {
        first = status;
      }
      continue;
    }
    if (options_.group_commit) {
      // Compaction sealed and fsynced every live record.
      shard->durable_seq = shard->appended_seq;
      shard->durable_cv.NotifyAll();
    }
  }
  return first;
}

ShardedDiskStore::Stats ShardedDiskStore::stats() const {
  Stats total;
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    const Stats& s = shard->store->stats();
    total.segments += s.segments;
    total.live_bytes += s.live_bytes;
    total.garbage_bytes += s.garbage_bytes;
    total.appends += s.appends;
    total.bytes_written += s.bytes_written;
    total.syncs += s.syncs;
    total.compactions += s.compactions;
    total.replayed_records += s.replayed_records;
    total.torn_tails += s.torn_tails;
  }
  return total;
}

ShardedDiskStore::CommitStats ShardedDiskStore::commit_stats() const {
  MutexLock lock(&metrics_mu_);
  return commit_stats_;
}

// --- worker threads ----------------------------------------------------------

void ShardedDiskStore::CommitterLoop(Shard* s) {
  MutexLock lock(&s->mu);
  for (;;) {
    while (!s->stop && s->appended_seq == s->durable_seq &&
           s->error == StatusCode::kOk) {
      s->work_cv.Wait(&s->mu);
    }
    if (s->error != StatusCode::kOk) {
      return;  // poisoned: waiters were already released with the error
    }
    if (s->appended_seq == s->durable_seq) {
      return;  // stop requested and fully drained
    }
    if (options_.commit_delay_us > 0 && !s->stop &&
        s->appended_seq - s->durable_seq < options_.commit_batch_max) {
      // Batching window: give concurrent appenders one bounded delay to
      // join this fsync. Appenders that arrive later simply ride the next
      // batch — correctness never depends on who makes the cut.
      (void)s->work_cv.WaitFor(&s->mu, options_.commit_delay_us);
    }
    const uint64_t batch_end = s->appended_seq;
    const uint64_t batch_size = batch_end - s->durable_seq;
    // fsync with the shard mutex held: appenders that arrive during the
    // fsync block on the mutex, proceed the moment it returns, and form the
    // next batch while this thread sits in the window above.
    StatusCode status = s->store->Sync();
    if (status != StatusCode::kOk) {
      s->error = status;
      s->durable_cv.NotifyAll();
      return;
    }
    s->durable_seq = batch_end;
    s->durable_cv.NotifyAll();
    {
      MutexLock mlock(&metrics_mu_);
      ++commit_stats_.batches;
      commit_stats_.batched_appends += batch_size;
      if (m_commit_batches_ != nullptr) {
        m_commit_batches_->Inc();
      }
      if (m_commit_batch_size_ != nullptr) {
        m_commit_batch_size_->Observe(static_cast<double>(batch_size));
      }
    }
  }
}

void ShardedDiskStore::CompactorLoop() {
  for (;;) {
    size_t idx = 0;
    {
      MutexLock lock(&compact_mu_);
      while (!compact_stop_ && compact_queue_.empty()) {
        compact_cv_.Wait(&compact_mu_);
      }
      if (compact_queue_.empty()) {
        return;  // stop requested and queue drained
      }
      idx = compact_queue_.front();
      compact_queue_.pop_front();
    }
    Shard& s = *shards_[idx];
    bool ran = false;
    int64_t pause_us = 0;
    {
      MutexLock lock(&s.mu);
      s.compact_queued = false;
      if (s.error == StatusCode::kOk && s.store->NeedsCompaction()) {
        // Wall clock, not sim time: the pause instrument measures how long
        // this shard's serving ops would have stalled behind the lock.
        const auto start = std::chrono::steady_clock::now();  // lint:allow-nondeterminism
        StatusCode status = s.store->Compact();
        const auto end = std::chrono::steady_clock::now();  // lint:allow-nondeterminism
        pause_us = std::chrono::duration_cast<std::chrono::microseconds>(
                       end - start)
                       .count();
        ran = true;
        if (status != StatusCode::kOk) {
          s.error = status;
          s.durable_cv.NotifyAll();
        } else if (options_.group_commit) {
          // Compaction fsynced every live record on its way out.
          s.durable_seq = s.appended_seq;
          s.durable_cv.NotifyAll();
        }
      }
    }
    if (ran) {
      MutexLock mlock(&metrics_mu_);
      ++commit_stats_.background_compactions;
      if (m_compact_background_ != nullptr) {
        m_compact_background_->Inc();
      }
      if (m_compact_pause_us_ != nullptr) {
        m_compact_pause_us_->Observe(static_cast<double>(pause_us));
      }
    }
  }
}

}  // namespace past
