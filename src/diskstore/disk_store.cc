#include "src/diskstore/disk_store.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/logging.h"
#include "src/obs/prof.h"

namespace past {

DiskStore::DiskStore(std::string dir, const DiskStoreOptions& options)
    : dir_(std::move(dir)),
      options_(options),
      env_(options.env != nullptr ? options.env : Env::Default()) {
  if (options_.metrics != nullptr) {
    m_bytes_written_ = options_.metrics->GetCounter("disk.bytes_written");
    m_fsyncs_ = options_.metrics->GetCounter("disk.fsyncs");
    m_compactions_ = options_.metrics->GetCounter("disk.compactions");
    m_recovery_replayed_ = options_.metrics->GetCounter("disk.recovery_replayed");
    m_torn_tails_ = options_.metrics->GetCounter("disk.torn_tails");
    m_segments_ = options_.metrics->GetGauge("disk.segments");
#if defined(PAST_PROF)
    m_append_us_ = options_.metrics->GetLogHistogram("disk.append_us");
    m_fsync_us_ = options_.metrics->GetLogHistogram("disk.fsync_us");
#endif
  }
}

DiskStore::~DiskStore() {
  if (active_file_ != nullptr) {
    // Best-effort durability on clean shutdown; a failure here has no
    // caller to report to, and replay handles whatever did not land.
    IgnoreStatus(active_file_->Sync());
    IgnoreStatus(active_file_->Close());
  }
  if (m_segments_ != nullptr) {
    m_segments_->Sub(static_cast<double>(segment_seqs_.size()));
  }
}

Result<std::unique_ptr<DiskStore>> DiskStore::Open(const std::string& dir,
                                                   const DiskStoreOptions& options) {
  std::unique_ptr<DiskStore> store(new DiskStore(dir, options));
  StatusCode status = store->Replay();
  if (status != StatusCode::kOk) {
    return status;
  }
  return store;
}

std::string DiskStore::SegmentPath(uint64_t seq) const {
  return dir_ + "/" + SegmentFileName(seq);
}

// --- recovery ------------------------------------------------------------------

StatusCode DiskStore::Replay() {
  StatusCode status = env_->CreateDirs(dir_);
  if (status != StatusCode::kOk) {
    return status;
  }
  std::vector<std::string> names;
  status = env_->ListDir(dir_, &names);
  if (status != StatusCode::kOk) {
    return status;
  }
  std::vector<uint64_t> seqs;
  for (const std::string& name : names) {
    uint64_t seq = 0;
    if (ParseSegmentFileName(name, &seq)) {
      seqs.push_back(seq);
    }
  }
  std::sort(seqs.begin(), seqs.end());

  for (size_t i = 0; i < seqs.size(); ++i) {
    const bool is_last = i + 1 == seqs.size();
    status = ReplaySegment(seqs[i], is_last);
    if (status == StatusCode::kNotFound) {
      // The newest segment held nothing recoverable (a crash before its
      // header landed) and was deleted.
      PAST_CHECK(is_last);
      seqs.pop_back();
      break;
    }
    if (status != StatusCode::kOk) {
      return status;
    }
    segment_seqs_.push_back(seqs[i]);
  }
  if (m_recovery_replayed_ != nullptr) {
    m_recovery_replayed_->Inc(stats_.replayed_records);
  }
  if (m_segments_ != nullptr) {
    m_segments_->Add(static_cast<double>(segment_seqs_.size()));
  }
  stats_.segments = segment_seqs_.size();

  next_seq_ = seqs.empty() ? 1 : seqs.back() + 1;
  if (!seqs.empty()) {
    uint64_t last_size = 0;
    status = env_->FileSize(SegmentPath(seqs.back()), &last_size);
    if (status != StatusCode::kOk) {
      return status;
    }
    if (last_size < options_.segment_target_bytes) {
      // Resume appending where the log left off.
      return OpenActiveSegment(seqs.back(), last_size);
    }
  }
  return OpenActiveSegment(next_seq_++, 0);
}

StatusCode DiskStore::ReplaySegment(uint64_t seq, bool is_last) {
  const std::string path = SegmentPath(seq);
  Bytes buf;
  StatusCode status = env_->ReadFile(path, &buf);
  if (status != StatusCode::kOk) {
    return StatusCode::kUnavailable;
  }
  if (buf.size() < kSegmentHeaderSize) {
    if (is_last) {
      // Crash before the segment header was fully written: the file cannot
      // contain any acknowledged record, so drop it (best effort: a
      // leftover headerless file is re-dropped on the next replay).
      IgnoreStatus(env_->RemoveFile(path));
      ++stats_.torn_tails;
      if (m_torn_tails_ != nullptr) {
        m_torn_tails_->Inc();
      }
      return StatusCode::kNotFound;
    }
    return StatusCode::kCorruption;
  }
  uint64_t header_seq = 0;
  if (!DecodeSegmentHeader(ByteSpan(buf.data(), buf.size()), &header_seq) ||
      header_seq != seq) {
    return StatusCode::kCorruption;
  }

  size_t offset = kSegmentHeaderSize;
  ByteSpan span(buf.data(), buf.size());
  Record record;
  for (;;) {
    const size_t start = offset;
    ParseStatus parse = ParseRecord(span, &offset, &record);
    if (parse == ParseStatus::kAtEnd) {
      return StatusCode::kOk;
    }
    if (parse == ParseStatus::kOk) {
      IndexEntry entry;
      entry.seg = seq;
      entry.value_offset = start + kRecordPrefixSize + kRecordBodyMinSize;
      entry.value_len = static_cast<uint32_t>(record.value.size());
      entry.record_len = static_cast<uint32_t>(offset - start);
      ApplyRecord(record, entry);
      ++stats_.replayed_records;
      continue;
    }
    // A record that cannot be parsed. In the newest segment this is the torn
    // tail of an interrupted append: every record before it is intact, so cut
    // the log there and keep the consistent prefix. Anywhere else the log has
    // valid data after the bad record — genuine corruption, surfaced to the
    // caller rather than silently dropped.
    if (!is_last) {
      return StatusCode::kCorruption;
    }
    status = env_->TruncateFile(path, start);
    if (status != StatusCode::kOk) {
      return StatusCode::kUnavailable;
    }
    ++stats_.torn_tails;
    if (m_torn_tails_ != nullptr) {
      m_torn_tails_->Inc();
    }
    return StatusCode::kOk;
  }
}

void DiskStore::ApplyRecord(const Record& record, const IndexEntry& entry) {
  const bool is_pointer = record.type == RecordType::kPointerPut ||
                          record.type == RecordType::kPointerRemove;
  Index* index = is_pointer ? &pointers_ : &files_;
  const bool is_put =
      record.type == RecordType::kPut || record.type == RecordType::kPointerPut;
  auto it = index->find(record.key);
  if (is_put) {
    if (it != index->end()) {
      stats_.live_bytes -= it->second.record_len;
      stats_.garbage_bytes += it->second.record_len;
      it->second = entry;
    } else {
      index->emplace(record.key, entry);
    }
    stats_.live_bytes += entry.record_len;
  } else {
    if (it != index->end()) {
      stats_.live_bytes -= it->second.record_len;
      stats_.garbage_bytes += it->second.record_len;
      index->erase(it);
    }
    // The remove record itself is dead weight the next compaction drops.
    stats_.garbage_bytes += entry.record_len;
  }
}

// --- appends -------------------------------------------------------------------

StatusCode DiskStore::OpenActiveSegment(uint64_t seq, uint64_t existing_size) {
  StatusCode status = env_->NewWritableFile(SegmentPath(seq), &active_file_);
  if (status != StatusCode::kOk) {
    return status;
  }
  if (existing_size == 0) {
    Bytes header = EncodeSegmentHeader(seq);
    status = active_file_->Append(ByteSpan(header.data(), header.size()));
    if (status != StatusCode::kOk) {
      return status;
    }
    active_size_ = header.size();
    stats_.bytes_written += header.size();
    if (m_bytes_written_ != nullptr) {
      m_bytes_written_->Inc(header.size());
    }
    segment_seqs_.push_back(seq);
    stats_.segments = segment_seqs_.size();
    if (m_segments_ != nullptr) {
      m_segments_->Add(1);
    }
  } else {
    active_size_ = existing_size;
  }
  return StatusCode::kOk;
}

StatusCode DiskStore::SealActiveSegment() {
  if (active_file_ == nullptr) {
    return StatusCode::kOk;
  }
  StatusCode status = active_file_->Sync();
  ++stats_.syncs;
  if (m_fsyncs_ != nullptr) {
    m_fsyncs_->Inc();
  }
  if (status == StatusCode::kOk) {
    status = active_file_->Close();
  }
  active_file_.reset();
  appends_since_sync_ = 0;
  return status;
}

StatusCode DiskStore::Append(RecordType type, const U160& key, ByteSpan value) {
  if (active_size_ >= options_.segment_target_bytes) {
    StatusCode status = SealActiveSegment();
    if (status != StatusCode::kOk) {
      return status;
    }
    status = OpenActiveSegment(next_seq_++, 0);
    if (status != StatusCode::kOk) {
      return status;
    }
  }
  Bytes record = EncodeRecord(type, key, value);
  IndexEntry entry;
  entry.seg = segment_seqs_.back();
  entry.value_offset = active_size_ + kRecordPrefixSize + kRecordBodyMinSize;
  entry.value_len = static_cast<uint32_t>(value.size());
  entry.record_len = static_cast<uint32_t>(record.size());
  StatusCode status;
  {
    PAST_PROF_SCOPE(m_append_us_);
    status = active_file_->Append(ByteSpan(record.data(), record.size()));
  }
  if (status != StatusCode::kOk) {
    return status;
  }
  active_size_ += record.size();
  ++stats_.appends;
  stats_.bytes_written += record.size();
  if (m_bytes_written_ != nullptr) {
    m_bytes_written_->Inc(record.size());
  }
  Record applied;
  applied.type = type;
  applied.key = key;
  ApplyRecord(applied, entry);

  if (options_.sync_every > 0 && ++appends_since_sync_ >= options_.sync_every) {
    status = Sync();
    if (status != StatusCode::kOk) {
      return status;
    }
  }
  if (!options_.inline_compaction) {
    // The owner watches NeedsCompaction() and runs Compact() off the
    // serving path.
    return StatusCode::kOk;
  }
  return MaybeCompact();
}

StatusCode DiskStore::Sync() {
  if (active_file_ == nullptr) {
    return StatusCode::kOk;
  }
  StatusCode status;
  {
    PAST_PROF_SCOPE(m_fsync_us_);
    status = active_file_->Sync();
  }
  ++stats_.syncs;
  appends_since_sync_ = 0;
  if (m_fsyncs_ != nullptr) {
    m_fsyncs_->Inc();
  }
  return status;
}

// --- compaction ----------------------------------------------------------------

bool DiskStore::NeedsCompaction() const {
  const uint64_t total = stats_.live_bytes + stats_.garbage_bytes;
  if (total == 0 || stats_.garbage_bytes < options_.compact_min_bytes) {
    return false;
  }
  return static_cast<double>(stats_.garbage_bytes) >=
         options_.compact_garbage_ratio * static_cast<double>(total);
}

StatusCode DiskStore::MaybeCompact() {
  return NeedsCompaction() ? Compact() : StatusCode::kOk;
}

StatusCode DiskStore::Compact() {
  // Seal first so everything the new segment is built from is durable before
  // any old file is deleted.
  StatusCode status = SealActiveSegment();
  if (status != StatusCode::kOk) {
    return status;
  }
  const uint64_t compact_seq = next_seq_++;
  std::unique_ptr<WritableFile> out;
  status = env_->NewWritableFile(SegmentPath(compact_seq), &out);
  if (status != StatusCode::kOk) {
    return status;
  }
  Bytes header = EncodeSegmentHeader(compact_seq);
  status = out->Append(ByteSpan(header.data(), header.size()));
  if (status != StatusCode::kOk) {
    return status;
  }
  uint64_t offset = header.size();
  uint64_t written = header.size();
  uint64_t live = 0;
  Index new_files;
  Index new_pointers;
  // The index is rebuilt only after the new segment is fully on disk, so an
  // I/O failure below leaves the store reading from the old segments; a
  // half-written compaction segment is harmless on the next Open (its
  // records re-assert live state, its tail is torn).
  struct Rewrite {
    const Index* from;
    Index* to;
    RecordType type;
  };
  const Rewrite passes[] = {{&files_, &new_files, RecordType::kPut},
                            {&pointers_, &new_pointers, RecordType::kPointerPut}};
  for (const Rewrite& pass : passes) {
    for (const auto& [key, old_entry] : *pass.from) {
      Result<Bytes> value = ReadValue(*pass.from, key);
      if (!value.ok()) {
        return value.status();
      }
      Bytes record =
          EncodeRecord(pass.type, key, ByteSpan(value.value().data(),
                                                value.value().size()));
      status = out->Append(ByteSpan(record.data(), record.size()));
      if (status != StatusCode::kOk) {
        return status;
      }
      IndexEntry entry;
      entry.seg = compact_seq;
      entry.value_offset = offset + kRecordPrefixSize + kRecordBodyMinSize;
      entry.value_len = old_entry.value_len;
      entry.record_len = static_cast<uint32_t>(record.size());
      pass.to->emplace(key, entry);
      offset += record.size();
      written += record.size();
      live += record.size();
    }
  }
  status = out->Sync();
  ++stats_.syncs;
  if (m_fsyncs_ != nullptr) {
    m_fsyncs_->Inc();
  }
  if (status == StatusCode::kOk) {
    status = out->Close();
  }
  if (status != StatusCode::kOk) {
    return status;
  }

  // The new segment is durable: retire everything older (best effort; on
  // the default Env, RemoveFile only fails for an already-absent file).
  for (uint64_t seq : segment_seqs_) {
    IgnoreStatus(env_->RemoveFile(SegmentPath(seq)));
  }
  if (m_segments_ != nullptr) {
    m_segments_->Sub(static_cast<double>(segment_seqs_.size()) - 1.0);
  }
  segment_seqs_.clear();
  segment_seqs_.push_back(compact_seq);
  files_ = std::move(new_files);
  pointers_ = std::move(new_pointers);
  stats_.live_bytes = live;
  stats_.garbage_bytes = 0;
  stats_.bytes_written += written;
  if (m_bytes_written_ != nullptr) {
    m_bytes_written_->Inc(written);
  }
  ++stats_.compactions;
  if (m_compactions_ != nullptr) {
    m_compactions_->Inc();
  }
  status = OpenActiveSegment(next_seq_++, 0);
  stats_.segments = segment_seqs_.size();
  return status;
}

// --- point operations ------------------------------------------------------------

Result<Bytes> DiskStore::ReadValue(const Index& index, const U160& key) const {
  auto it = index.find(key);
  if (it == index.end()) {
    return StatusCode::kNotFound;
  }
  if (it->second.value_len == 0) {
    return Bytes{};
  }
  Bytes out;
  StatusCode status = env_->ReadRange(SegmentPath(it->second.seg),
                                      it->second.value_offset,
                                      it->second.value_len, &out);
  if (status != StatusCode::kOk) {
    return status;
  }
  return out;
}

StatusCode DiskStore::RemoveFrom(Index* index, RecordType type, const U160& key) {
  if (index->count(key) == 0) {
    return StatusCode::kNotFound;
  }
  return Append(type, key, {});
}

StatusCode DiskStore::Put(const U160& key, ByteSpan value) {
  return Append(RecordType::kPut, key, value);
}

StatusCode DiskStore::Remove(const U160& key) {
  return RemoveFrom(&files_, RecordType::kRemove, key);
}

Result<Bytes> DiskStore::Get(const U160& key) const {
  return ReadValue(files_, key);
}

StatusCode DiskStore::PutPointer(const U160& key, ByteSpan value) {
  return Append(RecordType::kPointerPut, key, value);
}

StatusCode DiskStore::RemovePointer(const U160& key) {
  return RemoveFrom(&pointers_, RecordType::kPointerRemove, key);
}

Result<Bytes> DiskStore::GetPointer(const U160& key) const {
  return ReadValue(pointers_, key);
}

std::vector<U160> DiskStore::Keys() const {
  std::vector<U160> out;
  out.reserve(files_.size());
  for (const auto& [key, entry] : files_) {
    out.push_back(key);
  }
  return out;
}

std::vector<U160> DiskStore::PointerKeys() const {
  std::vector<U160> out;
  out.reserve(pointers_.size());
  for (const auto& [key, entry] : pointers_) {
    out.push_back(key);
  }
  return out;
}

}  // namespace past
