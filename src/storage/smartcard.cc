#include "src/storage/smartcard.h"

#include "src/common/check.h"

namespace past {

Smartcard::Smartcard(RsaKeyPair key, Bytes broker_signature, RsaPublicKey broker_key,
                     uint64_t usage_quota, uint64_t contributed_storage, int64_t expiry)
    : key_(std::move(key)),
      broker_key_(std::move(broker_key)),
      usage_quota_(usage_quota),
      contributed_storage_(contributed_storage),
      expiry_(expiry) {
  identity_.public_key = key_.pub;
  identity_.broker_signature = std::move(broker_signature);
}

Result<FileCertificate> Smartcard::IssueFileCertificate(std::string_view name,
                                                        uint64_t size,
                                                        ByteSpan content_hash,
                                                        uint32_t k, uint64_t salt,
                                                        int64_t date) {
  if (k == 0 || size == 0) {
    return StatusCode::kInvalidArgument;
  }
  if (date > expiry_) {
    return StatusCode::kCertificateExpired;
  }
  const uint64_t charge = size * k;
  if (charge / k != size || charge > quota_remaining()) {
    return StatusCode::kQuotaExceeded;
  }
  FileCertificate cert;
  cert.file_id = MakeFileId(name, key_.pub, salt);
  cert.content_hash.assign(content_hash.begin(), content_hash.end());
  cert.file_size = size;
  cert.replication_factor = k;
  cert.salt = salt;
  cert.insertion_date = date;
  cert.owner = identity_;
  cert.signature = RsaSignMessage(key_, cert.SignedBytes());
  quota_used_ += charge;
  return cert;
}

StatusCode Smartcard::RefundFileCertificate(const FileCertificate& cert) {
  if (!(cert.owner == identity_)) {
    return StatusCode::kNotAuthorized;
  }
  if (credited_.count(cert.file_id) > 0) {
    return StatusCode::kAlreadyExists;
  }
  const uint64_t charge = cert.file_size * cert.replication_factor;
  PAST_CHECK_MSG(charge <= quota_used_, "refund exceeds recorded usage");
  quota_used_ -= charge;
  credited_.insert(cert.file_id);
  return StatusCode::kOk;
}

ReclaimCertificate Smartcard::IssueReclaimCertificate(const FileId& file_id,
                                                      int64_t date) {
  ReclaimCertificate cert;
  cert.file_id = file_id;
  cert.owner = identity_;
  cert.date = date;
  cert.signature = RsaSignMessage(key_, cert.SignedBytes());
  return cert;
}

StatusCode Smartcard::CreditReclaim(const ReclaimReceipt& receipt,
                                    const FileCertificate& cert) {
  if (receipt.file_id != cert.file_id) {
    return StatusCode::kInvalidArgument;
  }
  if (!(cert.owner == identity_)) {
    return StatusCode::kNotAuthorized;
  }
  if (!VerifyReclaimReceipt(receipt)) {
    return StatusCode::kVerificationFailed;
  }
  if (credited_.count(cert.file_id) > 0) {
    return StatusCode::kAlreadyExists;
  }
  const uint64_t charge = cert.file_size * cert.replication_factor;
  const uint64_t credit = charge <= quota_used_ ? charge : quota_used_;
  quota_used_ -= credit;
  credited_.insert(cert.file_id);
  return StatusCode::kOk;
}

StoreReceipt Smartcard::IssueStoreReceipt(const FileId& file_id, bool diverted,
                                          int64_t ts) {
  StoreReceipt receipt;
  receipt.file_id = file_id;
  receipt.node_card = identity_;
  receipt.timestamp = ts;
  receipt.diverted = diverted;
  receipt.signature = RsaSignMessage(key_, receipt.SignedBytes());
  return receipt;
}

ReclaimReceipt Smartcard::IssueReclaimReceipt(const FileId& file_id, uint64_t bytes,
                                              int64_t ts) {
  ReclaimReceipt receipt;
  receipt.file_id = file_id;
  receipt.bytes_reclaimed = bytes;
  receipt.node_card = identity_;
  receipt.timestamp = ts;
  receipt.signature = RsaSignMessage(key_, receipt.SignedBytes());
  return receipt;
}

// --- Broker ---------------------------------------------------------------------

Broker::Broker(uint64_t seed, const BrokerOptions& options)
    : options_(options), rng_(seed), key_(RsaKeyPair::Generate(options.key_bits, &rng_)) {
  for (int i = 0; i < options_.modulus_pool; ++i) {
    BigNum p = BigNum::GeneratePrime(options_.key_bits / 2, &rng_);
    BigNum q = BigNum::GeneratePrime(options_.key_bits - options_.key_bits / 2, &rng_);
    while (q == p) {
      q = BigNum::GeneratePrime(options_.key_bits - options_.key_bits / 2, &rng_);
    }
    PooledModulus pm;
    pm.n = p.Mul(q);
    pm.phi = p.Sub(BigNum::FromU64(1)).Mul(q.Sub(BigNum::FromU64(1)));
    pm.p = std::move(p);
    pm.q = std::move(q);
    pool_.push_back(std::move(pm));
  }
}

RsaKeyPair Broker::MakeCardKey() {
  if (pool_.empty()) {
    return RsaKeyPair::Generate(options_.key_bits, &rng_);
  }
  // Pooled modulus with a fresh random exponent: cheap mass issuance with a
  // distinct public key (and thus a distinct nodeId) per card.
  const PooledModulus& pm = pool_[next_pool_index_];
  next_pool_index_ = (next_pool_index_ + 1) % pool_.size();
  while (true) {
    BigNum e = BigNum::RandomBelow(pm.phi, &rng_);
    if (!e.IsOdd() || e < BigNum::FromU64(3)) {
      continue;
    }
    BigNum d;
    if (!BigNum::ModInverse(e, pm.phi, &d)) {
      continue;
    }
    RsaKeyPair pair;
    pair.pub.n = pm.n;
    pair.pub.e = std::move(e);
    pair.d = std::move(d);
    pair.PopulateCrt(pm.p, pm.q);
    return pair;
  }
}

Result<std::unique_ptr<Smartcard>> Broker::IssueCard(uint64_t usage_quota,
                                                     uint64_t contributed_storage,
                                                     int64_t expiry) {
  StatusCode balance = CheckBalance(usage_quota, contributed_storage);
  if (balance != StatusCode::kOk) {
    return balance;  // before keygen, so a rejection never advances the rng
  }
  return Finalize(MakeCardKey(), usage_quota, contributed_storage, expiry);
}

Result<std::unique_ptr<Smartcard>> Broker::IssueCardWithSeed(
    uint64_t card_seed, uint64_t usage_quota, uint64_t contributed_storage,
    int64_t expiry) {
  // A dedicated rng and a full keygen (no modulus pool — pool contents
  // depend on broker issuance history) make the card a pure function of
  // (broker seed, card seed).
  StatusCode balance = CheckBalance(usage_quota, contributed_storage);
  if (balance != StatusCode::kOk) {
    return balance;
  }
  Rng card_rng(card_seed);
  return Finalize(RsaKeyPair::Generate(options_.key_bits, &card_rng), usage_quota,
                  contributed_storage, expiry);
}

StatusCode Broker::CheckBalance(uint64_t usage_quota,
                                uint64_t contributed_storage) const {
  if (options_.enforce_balance) {
    double projected_demand = static_cast<double>(total_demand_ + usage_quota);
    double supply = static_cast<double>(total_supply_ + contributed_storage);
    if (projected_demand > supply * options_.max_demand_supply_ratio) {
      return StatusCode::kQuotaExceeded;
    }
  }
  return StatusCode::kOk;
}

Result<std::unique_ptr<Smartcard>> Broker::Finalize(RsaKeyPair card_key,
                                                    uint64_t usage_quota,
                                                    uint64_t contributed_storage,
                                                    int64_t expiry) {
  Bytes signature = RsaSignMessage(key_, card_key.pub.Encode());
  total_demand_ += usage_quota;
  total_supply_ += contributed_storage;
  ++cards_issued_;
  return std::make_unique<Smartcard>(std::move(card_key), std::move(signature),
                                     key_.pub, usage_quota, contributed_storage,
                                     expiry);
}

}  // namespace past
