#include "src/storage/store_backend.h"

namespace past {

StatusCode MemoryBackend::Put(StoredFile file) {
  const FileId id = file.cert.file_id;
  files_[id] = std::move(file);
  return StatusCode::kOk;
}

const StoredFile* MemoryBackend::Get(const FileId& id) const {
  auto it = files_.find(id);
  return it == files_.end() ? nullptr : &it->second;
}

bool MemoryBackend::Remove(const FileId& id) { return files_.erase(id) > 0; }

StatusCode MemoryBackend::PutPointer(const FileId& id,
                                     const NodeDescriptor& holder) {
  pointers_[id] = holder;
  return StatusCode::kOk;
}

std::optional<NodeDescriptor> MemoryBackend::GetPointer(const FileId& id) const {
  auto it = pointers_.find(id);
  if (it == pointers_.end()) {
    return std::nullopt;
  }
  return it->second;
}

bool MemoryBackend::RemovePointer(const FileId& id) {
  return pointers_.erase(id) > 0;
}

std::vector<FileId> MemoryBackend::FileIds() const {
  std::vector<FileId> out;
  out.reserve(files_.size());
  for (const auto& [id, file] : files_) {
    out.push_back(id);
  }
  return out;
}

}  // namespace past
