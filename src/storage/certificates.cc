#include "src/storage/certificates.h"

#include "src/crypto/sha256.h"
#include "src/storage/verify_cache.h"

namespace past {
namespace {

// Route through the memo cache when one is supplied, else verify directly.
bool CheckSignature(VerifyCache* cache, const RsaPublicKey& key, ByteSpan message,
                    ByteSpan signature) {
  if (cache != nullptr) {
    return cache->VerifyMessage(key, message, signature);
  }
  return RsaVerifyMessage(key, message, signature);
}

}  // namespace

// --- CardIdentity ------------------------------------------------------------

void CardIdentity::EncodeTo(Writer* w) const {
  w->Blob(public_key.Encode());
  w->Blob(broker_signature);
}

bool CardIdentity::DecodeFrom(Reader* r, CardIdentity* out) {
  Bytes key_bytes;
  if (!r->Blob(&key_bytes) || !RsaPublicKey::Decode(key_bytes, &out->public_key)) {
    return false;
  }
  return r->Blob(&out->broker_signature);
}

bool CardIdentity::VerifyIssuedBy(const RsaPublicKey& broker,
                                  VerifyCache* cache) const {
  return CheckSignature(cache, broker, public_key.Encode(), broker_signature);
}

// --- FileCertificate ----------------------------------------------------------

Bytes FileCertificate::SignedBytes() const {
  Writer w;
  w.Id160(file_id);
  w.Blob(content_hash);
  w.U64(file_size);
  w.U32(replication_factor);
  w.U64(salt);
  w.I64(insertion_date);
  owner.EncodeTo(&w);
  return w.Take();
}

void FileCertificate::EncodeTo(Writer* w) const {
  w->Id160(file_id);
  w->Blob(content_hash);
  w->U64(file_size);
  w->U32(replication_factor);
  w->U64(salt);
  w->I64(insertion_date);
  owner.EncodeTo(w);
  w->Blob(signature);
}

bool FileCertificate::DecodeFrom(Reader* r, FileCertificate* out) {
  return r->Id160(&out->file_id) && r->Blob(&out->content_hash) &&
         r->U64(&out->file_size) && r->U32(&out->replication_factor) &&
         r->U64(&out->salt) && r->I64(&out->insertion_date) &&
         CardIdentity::DecodeFrom(r, &out->owner) && r->Blob(&out->signature);
}

bool FileCertificate::Verify(const RsaPublicKey& broker, VerifyCache* cache) const {
  if (!owner.VerifyIssuedBy(broker, cache)) {
    return false;
  }
  return CheckSignature(cache, owner.public_key, SignedBytes(), signature);
}

bool FileCertificate::MatchesContent(ByteSpan content) const {
  auto digest = Sha256::Hash(content);
  return content_hash.size() == digest.size() &&
         ConstantTimeEqual(content_hash, ByteSpan(digest.data(), digest.size()));
}

// --- StoreReceipt --------------------------------------------------------------

Bytes StoreReceipt::SignedBytes() const {
  Writer w;
  w.Id160(file_id);
  node_card.EncodeTo(&w);
  w.I64(timestamp);
  w.Bool(diverted);
  return w.Take();
}

void StoreReceipt::EncodeTo(Writer* w) const {
  w->Id160(file_id);
  node_card.EncodeTo(w);
  w->I64(timestamp);
  w->Bool(diverted);
  w->Blob(signature);
}

bool StoreReceipt::DecodeFrom(Reader* r, StoreReceipt* out) {
  return r->Id160(&out->file_id) && CardIdentity::DecodeFrom(r, &out->node_card) &&
         r->I64(&out->timestamp) && r->Bool(&out->diverted) && r->Blob(&out->signature);
}

bool StoreReceipt::Verify(const RsaPublicKey& broker, VerifyCache* cache) const {
  if (!node_card.VerifyIssuedBy(broker, cache)) {
    return false;
  }
  return CheckSignature(cache, node_card.public_key, SignedBytes(), signature);
}

// --- ReclaimCertificate ---------------------------------------------------------

Bytes ReclaimCertificate::SignedBytes() const {
  Writer w;
  w.Id160(file_id);
  owner.EncodeTo(&w);
  w.I64(date);
  return w.Take();
}

void ReclaimCertificate::EncodeTo(Writer* w) const {
  w->Id160(file_id);
  owner.EncodeTo(w);
  w->I64(date);
  w->Blob(signature);
}

bool ReclaimCertificate::DecodeFrom(Reader* r, ReclaimCertificate* out) {
  return r->Id160(&out->file_id) && CardIdentity::DecodeFrom(r, &out->owner) &&
         r->I64(&out->date) && r->Blob(&out->signature);
}

bool ReclaimCertificate::Verify(const RsaPublicKey& broker, VerifyCache* cache) const {
  if (!owner.VerifyIssuedBy(broker, cache)) {
    return false;
  }
  return CheckSignature(cache, owner.public_key, SignedBytes(), signature);
}

// --- ReclaimReceipt --------------------------------------------------------------

Bytes ReclaimReceipt::SignedBytes() const {
  Writer w;
  w.Id160(file_id);
  w.U64(bytes_reclaimed);
  node_card.EncodeTo(&w);
  w.I64(timestamp);
  return w.Take();
}

void ReclaimReceipt::EncodeTo(Writer* w) const {
  w->Id160(file_id);
  w->U64(bytes_reclaimed);
  node_card.EncodeTo(w);
  w->I64(timestamp);
  w->Blob(signature);
}

bool ReclaimReceipt::DecodeFrom(Reader* r, ReclaimReceipt* out) {
  return r->Id160(&out->file_id) && r->U64(&out->bytes_reclaimed) &&
         CardIdentity::DecodeFrom(r, &out->node_card) && r->I64(&out->timestamp) &&
         r->Blob(&out->signature);
}

bool ReclaimReceipt::Verify(const RsaPublicKey& broker, VerifyCache* cache) const {
  if (!node_card.VerifyIssuedBy(broker, cache)) {
    return false;
  }
  return CheckSignature(cache, node_card.public_key, SignedBytes(), signature);
}

}  // namespace past
