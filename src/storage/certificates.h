// Certificates and receipts of the PAST security architecture (Section 2.1).
//
// Every certificate is issued and signed by a smartcard whose public key is
// in turn certified by the broker (CardIdentity). Storage nodes verify file
// certificates before storing, clients verify store receipts to confirm k
// replicas exist, reclaim certificates authorize storage reclamation, and
// reclaim receipts let the client's card credit its quota.
#pragma once

#include <cstdint>

#include "src/common/serializer.h"
#include "src/crypto/rsa.h"
#include "src/pastry/node_id.h"
#include "src/storage/file_id.h"

namespace past {

class VerifyCache;

// A smartcard's public key plus the broker's certification signature over it.
// Knowing the broker's public key, anyone can check that a card is genuine.
//
// All Verify methods below take an optional VerifyCache: when non-null, the
// two RSA verifications per certificate (broker-over-card, card-over-payload)
// are memoized there, so a node re-checking the same certificate or the same
// card identity pays one SHA-1 instead of two modular exponentiations.
struct CardIdentity {
  RsaPublicKey public_key;
  Bytes broker_signature;

  void EncodeTo(Writer* w) const;
  [[nodiscard]] static bool DecodeFrom(Reader* r, CardIdentity* out);

  // Did `broker` certify this card?
  [[nodiscard]] bool VerifyIssuedBy(const RsaPublicKey& broker,
                                    VerifyCache* cache = nullptr) const;

  // The nodeId / pseudonym derived from this card.
  NodeId DerivedNodeId() const { return NodeIdFromPublicKey(public_key.Encode()); }

  bool operator==(const CardIdentity& other) const = default;
};

// Authorizes the insertion of one file (issued by the owner's card; the card
// debits size * k against the owner's quota at issue time).
struct FileCertificate {
  FileId file_id;
  Bytes content_hash;        // SHA-256 of the file contents
  uint64_t file_size = 0;    // bytes
  uint32_t replication_factor = 0;  // k
  uint64_t salt = 0;
  int64_t insertion_date = 0;
  CardIdentity owner;
  Bytes signature;           // owner card's signature over all fields above

  // The byte string the signature covers.
  Bytes SignedBytes() const;
  void EncodeTo(Writer* w) const;
  [[nodiscard]] static bool DecodeFrom(Reader* r, FileCertificate* out);

  // Signature valid and card certified by `broker`.
  [[nodiscard]] bool Verify(const RsaPublicKey& broker,
                            VerifyCache* cache = nullptr) const;
  // Does `content` match content_hash?
  [[nodiscard]] bool MatchesContent(ByteSpan content) const;
};

// Issued by a storage node after storing a replica; returned to the client,
// which requires k receipts from distinct nodes before declaring success.
struct StoreReceipt {
  FileId file_id;
  CardIdentity node_card;
  int64_t timestamp = 0;
  bool diverted = false;     // replica was diverted to another node
  Bytes signature;

  Bytes SignedBytes() const;
  void EncodeTo(Writer* w) const;
  [[nodiscard]] static bool DecodeFrom(Reader* r, StoreReceipt* out);
  [[nodiscard]] bool Verify(const RsaPublicKey& broker,
                            VerifyCache* cache = nullptr) const;
};

// Authorizes reclaiming the storage of a file; only the owner's card can
// produce a signature matching the file certificate's owner key.
struct ReclaimCertificate {
  FileId file_id;
  CardIdentity owner;
  int64_t date = 0;
  Bytes signature;

  Bytes SignedBytes() const;
  void EncodeTo(Writer* w) const;
  [[nodiscard]] static bool DecodeFrom(Reader* r, ReclaimCertificate* out);
  [[nodiscard]] bool Verify(const RsaPublicKey& broker,
                            VerifyCache* cache = nullptr) const;
};

// Issued by a storage node that reclaimed a replica; presented by the client
// to its card to credit the quota.
struct ReclaimReceipt {
  FileId file_id;
  uint64_t bytes_reclaimed = 0;
  CardIdentity node_card;
  int64_t timestamp = 0;
  Bytes signature;

  Bytes SignedBytes() const;
  void EncodeTo(Writer* w) const;
  [[nodiscard]] static bool DecodeFrom(Reader* r, ReclaimReceipt* out);
  [[nodiscard]] bool Verify(const RsaPublicKey& broker,
                            VerifyCache* cache = nullptr) const;
};

}  // namespace past

