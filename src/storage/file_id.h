// PAST file identifiers.
//
// A fileId is the 160-bit SHA-1 hash of the file's textual name, the owner's
// public key and a random salt (Section 2). Files are immutable: the same
// (name, owner, salt) triple always maps to the same id, and re-inserting
// under a fresh salt yields a new, unrelated id — which is exactly the "file
// diversion" retry mechanism the storage-management scheme uses.
#pragma once

#include <string_view>

#include "src/common/u160.h"
#include "src/crypto/rsa.h"

namespace past {

using FileId = U160;

// fileId = SHA-1(name || owner public key || salt).
FileId MakeFileId(std::string_view name, const RsaPublicKey& owner, uint64_t salt);

}  // namespace past

