#include "src/storage/file_id.h"

#include "src/common/serializer.h"
#include "src/crypto/sha1.h"

namespace past {

FileId MakeFileId(std::string_view name, const RsaPublicKey& owner, uint64_t salt) {
  Writer w;
  w.Str(name);
  w.Blob(owner.Encode());
  w.U64(salt);
  const Bytes& buf = w.bytes();
  return Sha1::HashToU160(ByteSpan(buf.data(), buf.size()));
}

}  // namespace past
