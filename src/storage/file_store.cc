#include "src/storage/file_store.h"

#include "src/common/check.h"

namespace past {

FileStore::FileStore(uint64_t capacity, MetricsRegistry* metrics)
    : FileStore(capacity, std::make_unique<MemoryBackend>(), metrics) {}

FileStore::FileStore(uint64_t capacity, std::unique_ptr<StoreBackend> backend,
                     MetricsRegistry* metrics)
    : capacity_(capacity), backend_(std::move(backend)) {
  PAST_CHECK(backend_ != nullptr);
  if (metrics != nullptr) {
    puts_ = metrics->GetCounter("store.puts");
    rejects_ = metrics->GetCounter("store.rejects");
    removes_ = metrics->GetCounter("store.removes");
    used_bytes_ = metrics->GetGauge("store.used_bytes");
    capacity_bytes_ = metrics->GetGauge("store.capacity_bytes");
    capacity_bytes_->Add(static_cast<double>(capacity_));
  }
  // A recovered backend already holds replicas; account for them so
  // admission decisions after a restart see the true free space.
  for (const FileId& id : backend_->FileIds()) {
    const StoredFile* file = backend_->Get(id);
    PAST_CHECK(file != nullptr);
    AccountUsed(static_cast<int64_t>(file->cert.file_size));
  }
}

FileStore::~FileStore() {
  // The shared gauges outlive this store; give back its contribution so
  // system-wide utilization stays truthful across node restarts.
  if (capacity_bytes_ != nullptr) {
    capacity_bytes_->Sub(static_cast<double>(capacity_));
  }
  if (used_bytes_ != nullptr) {
    used_bytes_->Sub(static_cast<double>(used_));
  }
}

StatusCode FileStore::Put(StoredFile file) {
  const FileId id = file.cert.file_id;
  if (backend_->Get(id) != nullptr) {
    if (rejects_ != nullptr) {
      rejects_->Inc();
    }
    return StatusCode::kAlreadyExists;
  }
  const uint64_t size = file.cert.file_size;
  if (size > free_space()) {
    if (rejects_ != nullptr) {
      rejects_->Inc();
    }
    return StatusCode::kInsufficientStorage;
  }
  StatusCode status = backend_->Put(std::move(file));
  if (status != StatusCode::kOk) {
    if (rejects_ != nullptr) {
      rejects_->Inc();
    }
    return status;
  }
  AccountUsed(static_cast<int64_t>(size));
  if (puts_ != nullptr) {
    puts_->Inc();
  }
  return StatusCode::kOk;
}

std::optional<uint64_t> FileStore::Remove(const FileId& id) {
  const StoredFile* file = backend_->Get(id);
  if (file == nullptr) {
    return std::nullopt;
  }
  uint64_t size = file->cert.file_size;
  PAST_CHECK(size <= used_);
  if (!backend_->Remove(id)) {
    return std::nullopt;
  }
  AccountUsed(-static_cast<int64_t>(size));
  if (removes_ != nullptr) {
    removes_->Inc();
  }
  return size;
}

void FileStore::AccountUsed(int64_t delta) {
  used_ = static_cast<uint64_t>(static_cast<int64_t>(used_) + delta);
  if (used_bytes_ != nullptr) {
    used_bytes_->Add(static_cast<double>(delta));
  }
}

StatusCode FileStore::PutPointer(const FileId& id, const NodeDescriptor& holder) {
  return backend_->PutPointer(id, holder);
}

std::optional<NodeDescriptor> FileStore::GetPointer(const FileId& id) const {
  return backend_->GetPointer(id);
}

bool FileStore::RemovePointer(const FileId& id) {
  return backend_->RemovePointer(id);
}

}  // namespace past
