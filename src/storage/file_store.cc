#include "src/storage/file_store.h"

#include "src/common/check.h"

namespace past {

FileStore::FileStore(uint64_t capacity, MetricsRegistry* metrics)
    : capacity_(capacity) {
  if (metrics != nullptr) {
    puts_ = metrics->GetCounter("store.puts");
    rejects_ = metrics->GetCounter("store.rejects");
    removes_ = metrics->GetCounter("store.removes");
    used_bytes_ = metrics->GetGauge("store.used_bytes");
    capacity_bytes_ = metrics->GetGauge("store.capacity_bytes");
    capacity_bytes_->Add(static_cast<double>(capacity_));
  }
}

StatusCode FileStore::Put(StoredFile file) {
  const FileId id = file.cert.file_id;
  if (files_.count(id) > 0) {
    if (rejects_ != nullptr) {
      rejects_->Inc();
    }
    return StatusCode::kAlreadyExists;
  }
  const uint64_t size = file.cert.file_size;
  if (size > free_space()) {
    if (rejects_ != nullptr) {
      rejects_->Inc();
    }
    return StatusCode::kInsufficientStorage;
  }
  AccountUsed(static_cast<int64_t>(size));
  files_.emplace(id, std::move(file));
  if (puts_ != nullptr) {
    puts_->Inc();
  }
  return StatusCode::kOk;
}

const StoredFile* FileStore::Get(const FileId& id) const {
  auto it = files_.find(id);
  return it == files_.end() ? nullptr : &it->second;
}

std::optional<uint64_t> FileStore::Remove(const FileId& id) {
  auto it = files_.find(id);
  if (it == files_.end()) {
    return std::nullopt;
  }
  uint64_t size = it->second.cert.file_size;
  PAST_CHECK(size <= used_);
  AccountUsed(-static_cast<int64_t>(size));
  files_.erase(it);
  if (removes_ != nullptr) {
    removes_->Inc();
  }
  return size;
}

void FileStore::AccountUsed(int64_t delta) {
  used_ = static_cast<uint64_t>(static_cast<int64_t>(used_) + delta);
  if (used_bytes_ != nullptr) {
    used_bytes_->Add(static_cast<double>(delta));
  }
}

void FileStore::PutPointer(const FileId& id, const NodeDescriptor& holder) {
  pointers_[id] = holder;
}

std::optional<NodeDescriptor> FileStore::GetPointer(const FileId& id) const {
  auto it = pointers_.find(id);
  if (it == pointers_.end()) {
    return std::nullopt;
  }
  return it->second;
}

bool FileStore::RemovePointer(const FileId& id) { return pointers_.erase(id) > 0; }

std::vector<FileId> FileStore::FileIds() const {
  std::vector<FileId> out;
  out.reserve(files_.size());
  for (const auto& [id, file] : files_) {
    out.push_back(id);
  }
  return out;
}

}  // namespace past
