#include "src/storage/past_node.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/logging.h"
#include "src/crypto/sha256.h"
#include "src/storage/disk_backend.h"

namespace past {
namespace {

Bytes ContentHashOf(ByteSpan content) {
  auto digest = Sha256::Hash(content);
  return Bytes(digest.begin(), digest.end());
}

// Pseudo content hash for synthetic (metadata-only) files.
Bytes SyntheticContentHash(std::string_view name, uint64_t size) {
  Writer w;
  w.Str(name);
  w.U64(size);
  const Bytes& buf = w.bytes();
  auto digest = Sha256::Hash(ByteSpan(buf.data(), buf.size()));
  return Bytes(digest.begin(), digest.end());
}

}  // namespace

std::unique_ptr<StoreBackend> PastNode::MakeBackend(const PastConfig& config,
                                                    const NodeId& id,
                                                    MetricsRegistry* metrics) {
  if (config.state_dir.empty()) {
    return std::make_unique<MemoryBackend>();
  }
  DiskStoreOptions options = config.disk;
  options.metrics = metrics;
  const std::string dir = config.state_dir + "/" + id.ToHex();
  Result<std::unique_ptr<DiskBackend>> backend = DiskBackend::Open(dir, options);
  if (!backend.ok()) {
    PAST_WARN("node %s: cannot open durable store in %s (%s); running in memory",
              id.ToHex().c_str(), dir.c_str(), StatusCodeName(backend.status()));
    return std::make_unique<MemoryBackend>();
  }
  return std::move(backend).value();
}

PastNode::PastNode(PastryNode* overlay, std::unique_ptr<Smartcard> card,
                   const PastConfig& config, uint64_t seed)
    : overlay_(overlay),
      card_(std::move(card)),
      config_(config),
      rng_(seed),
      store_(card_->contributed_storage(),
             MakeBackend(config, overlay->id(), &overlay->net()->metrics()),
             &overlay->net()->metrics()),
      cache_(config.cache_policy, &overlay->net()->metrics()),
      verify_cache_(config.verify_cache_entries, &overlay->net()->metrics()) {
  PAST_CHECK(overlay_ != nullptr);
  PAST_CHECK(card_ != nullptr);
  broker_key_ = card_->broker_key();
  overlay_->SetApp(this);
  ResolveInstruments();
}

PastNode::PastNode(PastryNode* overlay, RsaPublicKey broker_key,
                   const PastConfig& config, uint64_t seed)
    : overlay_(overlay),
      card_(nullptr),
      broker_key_(std::move(broker_key)),
      config_(config),
      rng_(seed),
      store_(0, &overlay->net()->metrics()),
      cache_(config.cache_policy, &overlay->net()->metrics()),
      verify_cache_(config.verify_cache_entries, &overlay->net()->metrics()) {
  PAST_CHECK(overlay_ != nullptr);
  overlay_->SetApp(this);
  ResolveInstruments();
}

void PastNode::ResolveInstruments() {
  MetricsRegistry& m = metrics();
  obs_.inserts_rooted = m.GetCounter("past.inserts_rooted");
  obs_.replicas_stored = m.GetCounter("past.replicas_stored");
  obs_.diverted_accepted = m.GetCounter("past.diverted_accepted");
  obs_.diversions_ok = m.GetCounter("past.diversions_ok");
  obs_.store_rejects = m.GetCounter("past.store_rejects");
  obs_.lookups_served_store = m.GetCounter("past.lookups_served_store");
  obs_.lookups_served_cache = m.GetCounter("past.lookups_served_cache");
  obs_.maintenance_fetches = m.GetCounter("past.maintenance_fetches");
  obs_.demotions = m.GetCounter("past.demotions");
  obs_.reclaims_processed = m.GetCounter("past.reclaims_processed");
  obs_.bad_certificates = m.GetCounter("past.bad_certificates");
  obs_.insert_latency = m.GetLogHistogram("past.insert.latency_us");
  obs_.lookup_latency = m.GetLogHistogram("past.lookup.latency_us");
  obs_.reclaim_latency = m.GetLogHistogram("past.reclaim.latency_us");
}

PastNode::~PastNode() {
  EventQueue* q = overlay_->queue();
  if (maintenance_timer_ != 0) {
    q->Cancel(maintenance_timer_);
  }
  for (auto& [id, p] : pending_inserts_) {
    if (p.timer != 0) {
      q->Cancel(p.timer);
    }
  }
  for (auto& [id, p] : pending_lookups_) {
    if (p.timer != 0) {
      q->Cancel(p.timer);
    }
  }
  for (auto& [id, p] : pending_reclaims_) {
    if (p.timer != 0) {
      q->Cancel(p.timer);
    }
  }
  for (auto& [id, p] : pending_audits_) {
    if (p.timer != 0) {
      q->Cancel(p.timer);
    }
  }
}

const FileCertificate* PastNode::OwnedFileCert(const FileId& id) const {
  auto it = owned_files_.find(id);
  return it == owned_files_.end() ? nullptr : &it->second;
}

// --- client: insert ------------------------------------------------------------

void PastNode::Insert(std::string name, Bytes content, uint32_t k, InsertCallback cb) {
  PendingInsert state;
  state.name = std::move(name);
  state.content_hash = ContentHashOf(ByteSpan(content.data(), content.size()));
  state.size = content.size();
  state.content = std::move(content);
  state.k = k == 0 ? config_.default_replication : k;
  state.cb = std::move(cb);
  state.started = Now();
  state.span = tracer().StartSpan("past.insert", Now(), overlay_->addr());
  tracer().Annotate(state.span, "file", state.name);
  StartInsertAttempt(std::move(state));
}

void PastNode::InsertSynthetic(std::string name, uint64_t size, uint32_t k,
                               InsertCallback cb) {
  PendingInsert state;
  state.content_hash = SyntheticContentHash(name, size);
  state.name = std::move(name);
  state.size = size;
  state.k = k == 0 ? config_.default_replication : k;
  state.cb = std::move(cb);
  state.started = Now();
  state.span = tracer().StartSpan("past.insert", Now(), overlay_->addr());
  tracer().Annotate(state.span, "file", state.name);
  StartInsertAttempt(std::move(state));
}

void PastNode::StartInsertAttempt(PendingInsert state) {
  if (card_ == nullptr) {
    FinishOpSpan(state.span, "not_authorized");
    state.cb(StatusCode::kNotAuthorized);  // read-only node
    return;
  }
  const uint64_t salt = rng_.NextU64();
  Result<FileCertificate> cert = card_->IssueFileCertificate(
      state.name, state.size, ByteSpan(state.content_hash.data(), state.content_hash.size()),
      state.k, salt, Now());
  if (!cert.ok()) {
    FinishOpSpan(state.span, StatusCodeName(cert.status()));
    state.cb(cert.status());
    return;
  }
  state.cert = std::move(cert).value();
  state.receipts.clear();
  state.receipt_nodes.clear();
  const FileId id = state.cert.file_id;

  InsertRequestPayload payload;
  payload.cert = state.cert;
  payload.content = state.content;
  payload.client = overlay_->descriptor();

  state.timer = overlay_->queue()->After(config_.request_timeout, [this, id] {
    auto it = pending_inserts_.find(id);
    if (it != pending_inserts_.end()) {
      it->second.timer = 0;
      FailInsertAttempt(id, StatusCode::kTimeout);
    }
  });
  const uint64_t span = state.span;
  pending_inserts_.emplace(id, std::move(state));
  RouteOp(id.Top128(), PastOp::kInsertRequest, payload.Encode(), span);
}

void PastNode::FailInsertAttempt(const FileId& id, StatusCode reason) {
  auto it = pending_inserts_.find(id);
  if (it == pending_inserts_.end()) {
    return;
  }
  PendingInsert state = std::move(it->second);
  pending_inserts_.erase(it);
  if (state.timer != 0) {
    overlay_->queue()->Cancel(state.timer);
    state.timer = 0;
  }
  // Clean up any replicas that did get stored, then return the quota debit.
  if (!state.receipts.empty()) {
    ReclaimRequestPayload cleanup;
    cleanup.cert = card_->IssueReclaimCertificate(id, Now());
    cleanup.client = overlay_->descriptor();
    RouteOp(id.Top128(), PastOp::kReclaimRequest, cleanup.Encode(), state.span);
  }
  if (StatusCode refund = card_->RefundFileCertificate(state.cert);
      refund != StatusCode::kOk) {
    PAST_WARN("quota refund for '%s' failed: %s", state.name.c_str(),
              StatusCodeName(refund));
  }

  if (state.attempt < config_.file_diversion_retries) {
    // File diversion: retry under a fresh salt, which maps the file to an
    // entirely different region of the id space (SOSP scheme).
    state.attempt += 1;
    PAST_DEBUG("file diversion retry %d for '%s'", state.attempt, state.name.c_str());
    StartInsertAttempt(std::move(state));
    return;
  }
  FinishOpSpan(state.span,
               reason == StatusCode::kTimeout ? "timeout" : "insert_rejected");
  state.cb(reason == StatusCode::kTimeout ? StatusCode::kTimeout
                                          : StatusCode::kInsertRejected);
}

void PastNode::HandleStoreReceipt(const StoreReceipt& receipt) {
  auto it = pending_inserts_.find(receipt.file_id);
  if (it == pending_inserts_.end()) {
    return;  // late or duplicate receipt
  }
  PendingInsert& state = it->second;
  if (config_.verify_crypto && !receipt.Verify(broker_key_, &verify_cache_)) {
    ++stats_.bad_certificates;
    obs_.bad_certificates->Inc();
    return;
  }
  const NodeId node = receipt.node_card.DerivedNodeId();
  if (!state.receipt_nodes.insert(node).second) {
    return;  // duplicate node
  }
  state.receipts.push_back(receipt);
  if (state.receipts.size() >= state.k) {
    if (state.timer != 0) {
      overlay_->queue()->Cancel(state.timer);
    }
    owned_files_.emplace(receipt.file_id, state.cert);
    obs_.insert_latency->Observe(static_cast<double>(Now() - state.started));
    FinishOpSpan(state.span, "ok");
    InsertCallback cb = std::move(state.cb);
    FileId id = receipt.file_id;
    pending_inserts_.erase(it);
    cb(id);
  }
}

void PastNode::HandleStoreNack(const StoreNackPayload& nack) {
  // A single refusal makes k receipts unreachable: fail the attempt now and
  // move on to file diversion.
  FailInsertAttempt(nack.file_id, StatusCode::kInsufficientStorage);
}

// --- client: lookup --------------------------------------------------------------

void PastNode::Lookup(const FileId& file_id, LookupCallback cb) {
  // Local fast paths: this node may itself hold a replica or a cached copy.
  // Latency is observed (as zero) on these too, so the quantiles reflect the
  // client's view, cache hits and all.
  if (const StoredFile* f = store_.Get(file_id)) {
    LookupOutcome outcome;
    outcome.cert = f->cert;
    outcome.content = f->content;
    outcome.from_cache = false;
    outcome.replier = overlay_->descriptor();
    ++stats_.lookups_served_store;
    obs_.lookups_served_store->Inc();
    obs_.lookup_latency->Observe(0.0);
    uint64_t span = tracer().RecordSpan("past.lookup", Now(), Now(), overlay_->addr());
    tracer().Annotate(span, "status", "local_store");
    cb(std::move(outcome));
    return;
  }
  if (const CachedFile* f = cache_.Get(file_id)) {
    LookupOutcome outcome;
    outcome.cert = f->cert;
    outcome.content = f->content;
    outcome.from_cache = true;
    outcome.replier = overlay_->descriptor();
    ++stats_.lookups_served_cache;
    obs_.lookups_served_cache->Inc();
    obs_.lookup_latency->Observe(0.0);
    uint64_t span = tracer().RecordSpan("past.lookup", Now(), Now(), overlay_->addr());
    tracer().Annotate(span, "status", "local_cache");
    cb(std::move(outcome));
    return;
  }
  if (pending_lookups_.count(file_id) > 0) {
    cb(StatusCode::kAlreadyExists);
    return;
  }
  PendingLookup pending;
  pending.cb = std::move(cb);
  pending.started = Now();
  pending.span = tracer().StartSpan("past.lookup", Now(), overlay_->addr());
  const uint64_t span = pending.span;
  pending.timer = overlay_->queue()->After(config_.request_timeout, [this, file_id] {
    auto it = pending_lookups_.find(file_id);
    if (it == pending_lookups_.end()) {
      return;
    }
    FinishOpSpan(it->second.span, "timeout");
    LookupCallback cb2 = std::move(it->second.cb);
    pending_lookups_.erase(it);
    cb2(StatusCode::kNotFound);
  });
  pending_lookups_.emplace(file_id, std::move(pending));

  LookupRequestPayload payload;
  payload.file_id = file_id;
  payload.client = overlay_->descriptor();
  // Any of the k replica holders can answer, so let routing deliver at the
  // proximally closest one (Section 2.2 locality: lookups tend to reach the
  // replica nearest the client).
  overlay_->Route(file_id.Top128(), static_cast<uint32_t>(PastOp::kLookupRequest),
                  payload.Encode(),
                  static_cast<uint8_t>(config_.default_replication), span);
}

void PastNode::HandleLookupReply(const LookupReplyPayload& reply) {
  auto it = pending_lookups_.find(reply.cert.file_id);
  if (it == pending_lookups_.end()) {
    return;  // duplicate answer from another replica
  }
  if (config_.verify_crypto && !reply.cert.Verify(broker_key_, &verify_cache_)) {
    ++stats_.bad_certificates;
    obs_.bad_certificates->Inc();
    return;
  }
  // Verify content authenticity against the owner-signed certificate.
  if (!reply.content.empty() &&
      !reply.cert.MatchesContent(ByteSpan(reply.content.data(), reply.content.size()))) {
    ++stats_.bad_certificates;
    obs_.bad_certificates->Inc();
    return;
  }
  if (it->second.timer != 0) {
    overlay_->queue()->Cancel(it->second.timer);
  }
  obs_.lookup_latency->Observe(static_cast<double>(Now() - it->second.started));
  FinishOpSpan(it->second.span, "ok");
  LookupCallback cb = std::move(it->second.cb);
  pending_lookups_.erase(it);
  // The client access point is on the lookup path too: cache the file here so
  // repeated local interest is served without another fetch.
  if (config_.cache_push_on_lookup) {
    MaybeCache(reply.cert, reply.content);
  }
  LookupOutcome outcome;
  outcome.cert = reply.cert;
  outcome.content = reply.content;
  outcome.from_cache = reply.from_cache;
  outcome.replier = reply.replier;
  cb(std::move(outcome));
}

// --- client: reclaim ---------------------------------------------------------------

void PastNode::Reclaim(const FileId& file_id, ReclaimCallback cb) {
  if (card_ == nullptr) {
    cb(StatusCode::kNotAuthorized);  // read-only node
    return;
  }
  auto owned = owned_files_.find(file_id);
  if (owned == owned_files_.end()) {
    cb(StatusCode::kNotFound);
    return;
  }
  if (pending_reclaims_.count(file_id) > 0) {
    cb(StatusCode::kAlreadyExists);
    return;
  }
  PendingReclaim pending;
  pending.cert = owned->second;
  pending.cb = std::move(cb);
  pending.started = Now();
  pending.span = tracer().StartSpan("past.reclaim", Now(), overlay_->addr());
  const uint64_t span = pending.span;
  pending.timer = overlay_->queue()->After(config_.request_timeout, [this, file_id] {
    auto it = pending_reclaims_.find(file_id);
    if (it == pending_reclaims_.end()) {
      return;
    }
    FinishOpSpan(it->second.span, "timeout");
    ReclaimCallback cb2 = std::move(it->second.cb);
    pending_reclaims_.erase(it);
    cb2(StatusCode::kTimeout);
  });
  pending_reclaims_.emplace(file_id, std::move(pending));

  ReclaimRequestPayload payload;
  payload.cert = card_->IssueReclaimCertificate(file_id, Now());
  payload.client = overlay_->descriptor();
  RouteOp(file_id.Top128(), PastOp::kReclaimRequest, payload.Encode(), span);
}

void PastNode::HandleReclaimReceipt(const ReclaimReceipt& receipt) {
  auto it = pending_reclaims_.find(receipt.file_id);
  if (it == pending_reclaims_.end()) {
    return;  // receipts from the remaining replicas
  }
  if (config_.verify_crypto && !receipt.Verify(broker_key_, &verify_cache_)) {
    ++stats_.bad_certificates;
    obs_.bad_certificates->Inc();
    return;
  }
  if (StatusCode credit = card_->CreditReclaim(receipt, it->second.cert);
      credit != StatusCode::kOk) {
    PAST_WARN("reclaim credit failed: %s", StatusCodeName(credit));
  }
  if (it->second.timer != 0) {
    overlay_->queue()->Cancel(it->second.timer);
  }
  obs_.reclaim_latency->Observe(static_cast<double>(Now() - it->second.started));
  FinishOpSpan(it->second.span, "ok");
  ReclaimCallback cb = std::move(it->second.cb);
  pending_reclaims_.erase(it);
  owned_files_.erase(receipt.file_id);
  cb(StatusCode::kOk);
}

// --- audits ------------------------------------------------------------------------

Bytes PastNode::AuditDigest(const FileCertificate& cert, uint64_t nonce) {
  Writer w;
  w.Blob(cert.content_hash);
  w.U64(nonce);
  const Bytes& buf = w.bytes();
  auto digest = Sha256::Hash(ByteSpan(buf.data(), buf.size()));
  return Bytes(digest.begin(), digest.end());
}

void PastNode::Audit(NodeAddr target, const FileId& file_id,
                     const FileCertificate& cert, AuditCallback cb) {
  PendingAudit pending;
  pending.cert = cert;
  pending.nonce = rng_.NextU64();
  pending.cb = std::move(cb);
  pending.timer = overlay_->queue()->After(config_.request_timeout, [this, file_id] {
    auto it = pending_audits_.find(file_id);
    if (it == pending_audits_.end()) {
      return;
    }
    AuditCallback cb2 = std::move(it->second.cb);
    pending_audits_.erase(it);
    cb2(false);  // no proof within the deadline
  });
  AuditChallengePayload challenge;
  challenge.file_id = file_id;
  challenge.nonce = pending.nonce;
  pending_audits_[file_id] = std::move(pending);
  SendOp(target, PastOp::kAuditChallenge, challenge.Encode());
}

void PastNode::HandleAuditChallenge(const NodeDescriptor& from,
                                    const AuditChallengePayload& challenge) {
  AuditResponsePayload response;
  response.file_id = challenge.file_id;
  response.nonce = challenge.nonce;
  const StoredFile* f = store_.Get(challenge.file_id);
  if (f != nullptr) {
    response.has_file = true;
    response.digest = AuditDigest(f->cert, challenge.nonce);
  } else {
    response.has_file = false;
  }
  SendOp(from.addr, PastOp::kAuditResponse, response.Encode());
}

void PastNode::HandleAuditResponse(const AuditResponsePayload& response) {
  auto it = pending_audits_.find(response.file_id);
  if (it == pending_audits_.end() || it->second.nonce != response.nonce) {
    return;
  }
  Bytes expected = AuditDigest(it->second.cert, it->second.nonce);
  bool passed = response.has_file &&
                ConstantTimeEqual(response.digest, expected);
  if (it->second.timer != 0) {
    overlay_->queue()->Cancel(it->second.timer);
  }
  AuditCallback cb = std::move(it->second.cb);
  pending_audits_.erase(it);
  cb(passed);
}

// --- storage node: insert path -------------------------------------------------------

void PastNode::HandleInsertAtRoot(const DeliverContext& ctx,
                                  const InsertRequestPayload& req) {
  ++stats_.inserts_rooted;
  obs_.inserts_rooted->Inc();
  if (config_.verify_crypto && !req.cert.Verify(broker_key_, &verify_cache_)) {
    ++stats_.bad_certificates;
    obs_.bad_certificates->Inc();
    StoreNackPayload nack;
    nack.file_id = req.cert.file_id;
    nack.reason = static_cast<uint8_t>(StatusCode::kVerificationFailed);
    SendOp(req.client.addr, PastOp::kStoreNack, nack.Encode());
    return;
  }
  std::vector<NodeDescriptor> replicas =
      overlay_->ReplicaSet(ctx.key, static_cast<int>(req.cert.replication_factor));
  StoreReplicaPayload replica;
  replica.cert = req.cert;
  replica.content = req.content;
  replica.client = req.client;
  replica.divert_allowed = config_.enable_replica_diversion;
  // Encode once: the file content is one wire allocation shared by every
  // remote replica, not one copy per recipient.
  Bytes encoded = replica.Encode();
  SharedBytes wire = overlay_->EncodeDirect(
      static_cast<uint32_t>(PastOp::kStoreReplica),
      ByteSpan(encoded.data(), encoded.size()));
  for (const NodeDescriptor& target : replicas) {
    if (target.id == overlay_->id()) {
      HandleStoreReplica(replica);
    } else {
      overlay_->SendDirectWire(target.addr, wire);
    }
  }
}

void PastNode::HandleStoreReplica(const StoreReplicaPayload& req) {
  const FileId id = req.cert.file_id;
  auto send_nack = [&](StatusCode reason) {
    ++stats_.store_rejects;
    obs_.store_rejects->Inc();
    StoreNackPayload nack;
    nack.file_id = id;
    nack.reason = static_cast<uint8_t>(reason);
    SendOp(req.client.addr, PastOp::kStoreNack, nack.Encode());
  };

  if (card_ == nullptr) {
    // Read-only access point: cannot issue store receipts.
    send_nack(StatusCode::kNotAuthorized);
    return;
  }

  if (config_.verify_crypto && !req.cert.Verify(broker_key_, &verify_cache_)) {
    ++stats_.bad_certificates;
    obs_.bad_certificates->Inc();
    send_nack(StatusCode::kVerificationFailed);
    return;
  }
  // Detect content corrupted en route by faulty/malicious intermediate nodes.
  if (!req.content.empty() &&
      !req.cert.MatchesContent(ByteSpan(req.content.data(), req.content.size()))) {
    ++stats_.bad_certificates;
    obs_.bad_certificates->Inc();
    send_nack(StatusCode::kVerificationFailed);
    return;
  }
  if (store_.Has(id)) {
    // Idempotent: re-issue the receipt.
    StoreReceiptPayload receipt;
    receipt.receipt = card_->IssueStoreReceipt(id, store_.Get(id)->diverted, Now());
    SendOp(req.client.addr, PastOp::kStoreReceiptMsg, receipt.Encode());
    return;
  }
  if (!config_.honest) {
    // Freeloader: issues a receipt but never stores. Random audits expose it.
    StoreReceiptPayload receipt;
    receipt.receipt = card_->IssueStoreReceipt(id, false, Now());
    SendOp(req.client.addr, PastOp::kStoreReceiptMsg, receipt.Encode());
    return;
  }

  const uint64_t size = req.cert.file_size;
  if (config_.policy.AcceptPrimary(size, primary_free())) {
    StorePrimary(req.cert, req.content, /*diverted=*/false, NodeDescriptor{});
    ++stats_.replicas_stored;
    obs_.replicas_stored->Inc();
    StoreReceiptPayload receipt;
    receipt.receipt = card_->IssueStoreReceipt(id, /*diverted=*/false, Now());
    SendOp(req.client.addr, PastOp::kStoreReceiptMsg, receipt.Encode());
    return;
  }

  if (config_.enable_replica_diversion && req.divert_allowed) {
    // Replica diversion (SOSP scheme): ask a leaf-set node that is not in the
    // file's replica set to hold the replica; keep a pointer here.
    std::vector<NodeDescriptor> replicas = overlay_->ReplicaSet(
        id.Top128(), static_cast<int>(req.cert.replication_factor));
    std::vector<NodeDescriptor> candidates;
    for (const NodeDescriptor& d : overlay_->leaf_set().Members()) {
      bool in_replica_set = false;
      for (const NodeDescriptor& r : replicas) {
        if (r.id == d.id) {
          in_replica_set = true;
          break;
        }
      }
      if (!in_replica_set) {
        candidates.push_back(d);
      }
    }
    rng_.Shuffle(&candidates);
    if (static_cast<int>(candidates.size()) > config_.diversion_candidates) {
      candidates.resize(static_cast<size_t>(config_.diversion_candidates));
    }
    if (!candidates.empty()) {
      PendingDivert divert;
      divert.cert = req.cert;
      divert.content = req.content;
      divert.client = req.client;
      divert.candidates = std::move(candidates);
      pending_diverts_[id] = std::move(divert);
      TryNextDiversion(id);
      return;
    }
  }
  send_nack(StatusCode::kInsufficientStorage);
}

void PastNode::TryNextDiversion(const FileId& id) {
  auto it = pending_diverts_.find(id);
  if (it == pending_diverts_.end()) {
    return;
  }
  PendingDivert& state = it->second;
  if (state.candidates.empty()) {
    ++stats_.store_rejects;
    obs_.store_rejects->Inc();
    StoreNackPayload nack;
    nack.file_id = id;
    nack.reason = static_cast<uint8_t>(StatusCode::kInsufficientStorage);
    SendOp(state.client.addr, PastOp::kStoreNack, nack.Encode());
    pending_diverts_.erase(it);
    return;
  }
  NodeDescriptor target = state.candidates.back();
  state.candidates.pop_back();
  DivertStorePayload payload;
  payload.cert = state.cert;
  payload.content = state.content;
  payload.client = state.client;
  payload.primary = overlay_->descriptor();
  SendOp(target.addr, PastOp::kDivertStore, payload.Encode());
}

void PastNode::HandleDivertStore(const NodeDescriptor& from,
                                 const DivertStorePayload& req) {
  const FileId id = req.cert.file_id;
  DivertResultPayload result;
  result.file_id = id;
  result.client = req.client;
  result.accepted = false;
  if (card_ != nullptr &&
      (!config_.verify_crypto || req.cert.Verify(broker_key_, &verify_cache_)) &&
      config_.honest && !store_.Has(id) &&
      config_.policy.AcceptDiverted(req.cert.file_size, primary_free())) {
    StorePrimary(req.cert, req.content, /*diverted=*/true, req.primary);
    ++stats_.diverted_accepted;
    obs_.diverted_accepted->Inc();
    result.accepted = true;
  }
  SendOp(from.addr, PastOp::kDivertResult, result.Encode());
}

void PastNode::HandleDivertResult(const NodeDescriptor& from,
                                  const DivertResultPayload& res) {
  auto it = pending_diverts_.find(res.file_id);
  if (it == pending_diverts_.end()) {
    return;
  }
  if (!res.accepted) {
    TryNextDiversion(res.file_id);
    return;
  }
  if (StatusCode status = store_.PutPointer(res.file_id, from);
      status != StatusCode::kOk) {
    // The replica is already on the diversion target; losing the pointer
    // only costs an indirection (maintenance re-fetches find it), so keep
    // the receipt path going but record the failure.
    PAST_WARN("diverted-pointer write failed: %s", StatusCodeName(status));
  }
  ++stats_.diversions_ok;
  obs_.diversions_ok->Inc();
  StoreReceiptPayload receipt;
  receipt.receipt = card_->IssueStoreReceipt(res.file_id, /*diverted=*/true, Now());
  SendOp(it->second.client.addr, PastOp::kStoreReceiptMsg, receipt.Encode());
  pending_diverts_.erase(it);
}

bool PastNode::StorePrimary(const FileCertificate& cert, Bytes content, bool diverted,
                            const NodeDescriptor& diverted_from) {
  const uint64_t size = cert.file_size;
  PAST_CHECK(size <= store_.free_space());
  // Cached copies yield to real replicas: shrink the cache so that primaries
  // plus cache never exceed the physical capacity.
  const uint64_t max_cache = store_.free_space() - size;
  cache_.ShrinkTo(max_cache);
  cache_.Remove(cert.file_id);
  StoredFile file;
  file.cert = cert;
  file.content = std::move(content);
  file.diverted = diverted;
  file.diverted_from = diverted_from;
  StatusCode status = store_.Put(std::move(file));
  PAST_CHECK(status == StatusCode::kOk);
  return true;
}

// --- storage node: lookup path --------------------------------------------------------

void PastNode::ServeLookup(const NodeDescriptor& client, const FileCertificate& cert,
                           const Bytes& content, bool from_cache,
                           const std::vector<NodeAddr>& path) {
  LookupReplyPayload reply;
  reply.cert = cert;
  reply.content = content;
  reply.from_cache = from_cache;
  reply.replier = overlay_->descriptor();
  SendOp(client.addr, PastOp::kLookupReply, reply.Encode());
  if (from_cache) {
    ++stats_.lookups_served_cache;
    obs_.lookups_served_cache->Inc();
  } else {
    ++stats_.lookups_served_store;
    obs_.lookups_served_store->Inc();
  }
  // Push cacheable copies to the nodes the lookup traversed (the SOSP scheme
  // caches along the lookup path; by Pastry's locality property the first
  // hops are close to the client). The path is at most O(log N) long.
  if (config_.cache_push_on_lookup) {
    std::vector<NodeAddr> targets;
    for (size_t i = 1; i + 1 < path.size(); ++i) {
      NodeAddr target = path[i];
      if (target == overlay_->addr() || target == client.addr) {
        continue;
      }
      targets.push_back(target);
    }
    if (!targets.empty()) {
      CachePushPayload push;
      push.cert = cert;
      push.content = content;
      SendOpMulti(targets, PastOp::kCachePush, push.Encode());
    }
  }
}

void PastNode::HandleLookupAtRoot(const DeliverContext& ctx,
                                  const LookupRequestPayload& req) {
  const FileId id = req.file_id;
  if (const StoredFile* f = store_.Get(id)) {
    ServeLookup(req.client, f->cert, f->content, /*from_cache=*/false, ctx.path);
    return;
  }
  if (std::optional<NodeDescriptor> holder = store_.GetPointer(id)) {
    // Diverted replica: redirect to the node actually holding it.
    FetchRequestPayload fetch;
    fetch.file_id = id;
    fetch.client = req.client;
    fetch.for_lookup = true;
    SendOp(holder->addr, PastOp::kFetchRequest, fetch.Encode());
    return;
  }
  if (const CachedFile* f = cache_.Get(id)) {
    ServeLookup(req.client, f->cert, f->content, /*from_cache=*/true, ctx.path);
    return;
  }
  // Not here (e.g. this node joined after the file was inserted and has not
  // finished fetching it). Ask the other likely replica holders; whoever has
  // the file answers the client directly. No answer -> client times out.
  std::vector<NodeDescriptor> replicas =
      overlay_->ReplicaSet(ctx.key, static_cast<int>(config_.default_replication));
  FetchRequestPayload fetch;
  fetch.file_id = id;
  fetch.client = req.client;
  fetch.for_lookup = true;
  std::vector<NodeAddr> targets;
  for (const NodeDescriptor& d : replicas) {
    if (d.id != overlay_->id()) {
      targets.push_back(d.addr);
    }
  }
  SendOpMulti(targets, PastOp::kFetchRequest, fetch.Encode());
}

void PastNode::HandleFetchRequest(const NodeDescriptor& from,
                                  const FetchRequestPayload& req) {
  const StoredFile* f = store_.Get(req.file_id);
  const FileCertificate* cert = nullptr;
  const Bytes* content = nullptr;
  bool from_cache = false;
  if (f != nullptr) {
    cert = &f->cert;
    content = &f->content;
  } else if (const CachedFile* c = cache_.Get(req.file_id)) {
    cert = &c->cert;
    content = &c->content;
    from_cache = true;
  }
  if (req.for_lookup) {
    if (cert != nullptr) {
      ServeLookup(req.client, *cert, *content, from_cache, {});
    }
    return;
  }
  FetchReplyPayload reply;
  reply.found = cert != nullptr;
  if (cert != nullptr) {
    reply.cert = *cert;
    reply.content = *content;
  }
  SendOp(from.addr, PastOp::kFetchReply, reply.Encode());
}

void PastNode::HandleFetchReply(const FetchReplyPayload& reply) {
  if (!reply.found) {
    return;
  }
  const FileId id = reply.cert.file_id;
  if (store_.Has(id)) {
    return;
  }
  if (config_.verify_crypto && !reply.cert.Verify(broker_key_, &verify_cache_)) {
    ++stats_.bad_certificates;
    obs_.bad_certificates->Inc();
    return;
  }
  // Maintenance fetch: this node is now among the k closest for the file, so
  // store it if it physically fits (recovery is not subject to t_pri).
  if (reply.cert.file_size <= primary_free()) {
    StorePrimary(reply.cert, reply.content, /*diverted=*/false, NodeDescriptor{});
    ++stats_.maintenance_fetches;
    obs_.maintenance_fetches->Inc();
  }
}

// --- storage node: reclaim path ----------------------------------------------------------

void PastNode::HandleReclaimAtRoot(const ReclaimRequestPayload& req) {
  const FileId id = req.cert.file_id;
  int k = static_cast<int>(config_.default_replication);
  if (const StoredFile* f = store_.Get(id)) {
    k = static_cast<int>(f->cert.replication_factor);
  }
  std::vector<NodeDescriptor> replicas = overlay_->ReplicaSet(id.Top128(), k);
  Bytes encoded = req.Encode();
  SharedBytes wire = overlay_->EncodeDirect(
      static_cast<uint32_t>(PastOp::kReclaimReplica),
      ByteSpan(encoded.data(), encoded.size()));
  for (const NodeDescriptor& target : replicas) {
    if (target.id == overlay_->id()) {
      HandleReclaimReplica(req);
    } else {
      overlay_->SendDirectWire(target.addr, wire);
    }
  }
}

void PastNode::HandleReclaimReplica(const ReclaimRequestPayload& req) {
  const FileId id = req.cert.file_id;
  if (config_.verify_crypto && !req.cert.Verify(broker_key_, &verify_cache_)) {
    ++stats_.bad_certificates;
    obs_.bad_certificates->Inc();
    return;
  }
  if (const StoredFile* f = store_.Get(id)) {
    PAST_CHECK_MSG(card_ != nullptr, "cardless node cannot hold replicas");
    // Only the owner of the file certificate may reclaim.
    if (!(req.cert.owner.public_key == f->cert.owner.public_key)) {
      ++stats_.bad_certificates;
      obs_.bad_certificates->Inc();
      return;
    }
    uint64_t size = f->cert.file_size;
    store_.Remove(id);
    ++stats_.reclaims_processed;
    obs_.reclaims_processed->Inc();
    ReclaimReceiptPayload receipt;
    receipt.receipt = card_->IssueReclaimReceipt(id, size, Now());
    SendOp(req.client.addr, PastOp::kReclaimReceiptMsg, receipt.Encode());
    return;
  }
  if (std::optional<NodeDescriptor> holder = store_.GetPointer(id)) {
    PAST_CHECK(store_.RemovePointer(id));  // present: GetPointer just hit
    SendOp(holder->addr, PastOp::kReclaimReplica, req.Encode());
    return;
  }
  // Cached copies carry no storage obligation, but reclaim drops them too.
  cache_.Remove(id);
}

// --- caching -------------------------------------------------------------------------------

void PastNode::MaybeCache(const FileCertificate& cert, const Bytes& content) {
  if (cache_.policy() == CachePolicy::kNone || store_.Has(cert.file_id) ||
      cache_.Contains(cert.file_id)) {
    return;
  }
  if (config_.verify_crypto && !cert.Verify(broker_key_, &verify_cache_)) {
    return;
  }
  const uint64_t available =
      card_ != nullptr ? primary_free() : config_.read_only_cache_capacity;
  if (static_cast<double>(cert.file_size) >
      config_.cache_max_frac * static_cast<double>(available)) {
    return;
  }
  cache_.Insert(cert, content, available);
}

void PastNode::HandleCachePush(const CachePushPayload& push) {
  MaybeCache(push.cert, push.content);
}

// --- replica maintenance ---------------------------------------------------------------------

void PastNode::OnLeafSetChanged() { ScheduleMaintenance(); }

void PastNode::ScheduleMaintenance() {
  if (maintenance_timer_ != 0) {
    overlay_->queue()->Cancel(maintenance_timer_);
  }
  maintenance_timer_ = overlay_->queue()->After(config_.maintenance_delay, [this] {
    maintenance_timer_ = 0;
    RunMaintenance();
  });
}

void PastNode::RunMaintenance() {
  if (!overlay_->active()) {
    return;
  }
  const uint64_t span =
      tracer().StartSpan("past.maintenance", Now(), overlay_->addr());
  const uint64_t demotions_before = stats_.demotions;
  for (const FileId& id : store_.FileIds()) {
    const StoredFile* f = store_.Get(id);
    if (f == nullptr || f->diverted) {
      continue;  // the pointer-holding primary manages diverted replicas
    }
    std::vector<NodeDescriptor> replicas = overlay_->ReplicaSet(
        id.Top128(), static_cast<int>(f->cert.replication_factor));
    bool self_in = false;
    for (const NodeDescriptor& d : replicas) {
      if (d.id == overlay_->id()) {
        self_in = true;
        break;
      }
    }
    ReplicaNotifyPayload notify;
    notify.file_id = id;
    notify.file_size = f->cert.file_size;
    std::vector<NodeAddr> targets;
    for (const NodeDescriptor& d : replicas) {
      if (d.id != overlay_->id()) {
        targets.push_back(d.addr);
      }
    }
    SendOpMulti(targets, PastOp::kReplicaNotify, notify.Encode());
    if (!self_in) {
      // No longer responsible: demote the replica to an (evictable) cached
      // copy after offering it to the current replica set above.
      MaybeCache(f->cert, f->content);
      store_.Remove(id);
      ++stats_.demotions;
      obs_.demotions->Inc();
    }
  }
  tracer().Annotate(span, "demotions",
                    std::to_string(stats_.demotions - demotions_before));
  tracer().EndSpan(span, Now());
}

void PastNode::HandleReplicaNotify(const NodeDescriptor& from,
                                   const ReplicaNotifyPayload& n) {
  if (store_.Has(n.file_id)) {
    return;
  }
  if (n.file_size > primary_free()) {
    return;
  }
  FetchRequestPayload fetch;
  fetch.file_id = n.file_id;
  fetch.for_lookup = false;
  SendOp(from.addr, PastOp::kFetchRequest, fetch.Encode());
}

// --- PastryApp dispatch -------------------------------------------------------------------------

void PastNode::Deliver(const DeliverContext& ctx, ByteSpan payload) {
  switch (static_cast<PastOp>(ctx.app_type)) {
    case PastOp::kInsertRequest: {
      InsertRequestPayload req;
      if (InsertRequestPayload::Decode(payload, &req)) {
        HandleInsertAtRoot(ctx, req);
      }
      break;
    }
    case PastOp::kLookupRequest: {
      LookupRequestPayload req;
      if (LookupRequestPayload::Decode(payload, &req)) {
        HandleLookupAtRoot(ctx, req);
      }
      break;
    }
    case PastOp::kReclaimRequest: {
      ReclaimRequestPayload req;
      if (ReclaimRequestPayload::Decode(payload, &req)) {
        if (config_.verify_crypto && !req.cert.Verify(broker_key_, &verify_cache_)) {
          ++stats_.bad_certificates;
          obs_.bad_certificates->Inc();
          break;
        }
        HandleReclaimAtRoot(req);
      }
      break;
    }
    default:
      PAST_WARN("PAST node %u: unexpected routed op %u", overlay_->addr(),
                ctx.app_type);
      break;
  }
}

bool PastNode::Forward(const U128& key, uint32_t app_type, const NodeDescriptor& next,
                       Bytes* payload) {
  (void)key;
  (void)next;
  switch (static_cast<PastOp>(app_type)) {
    case PastOp::kInsertRequest: {
      if (!config_.cache_on_insert_path || cache_.policy() == CachePolicy::kNone) {
        return true;
      }
      InsertRequestPayload req;
      if (InsertRequestPayload::Decode(ByteSpan(payload->data(), payload->size()),
                                       &req)) {
        MaybeCache(req.cert, req.content);
      }
      return true;
    }
    case PastOp::kLookupRequest: {
      LookupRequestPayload req;
      if (!LookupRequestPayload::Decode(ByteSpan(payload->data(), payload->size()),
                                        &req)) {
        return true;
      }
      // A transit node holding the file (replica or cached copy) answers
      // directly and absorbs the request — the paper's query load balancing.
      if (const StoredFile* f = store_.Get(req.file_id)) {
        ServeLookup(req.client, f->cert, f->content, /*from_cache=*/false, {});
        return false;
      }
      if (const CachedFile* f = cache_.Get(req.file_id)) {
        ServeLookup(req.client, f->cert, f->content, /*from_cache=*/true, {});
        return false;
      }
      return true;
    }
    default:
      return true;
  }
}

void PastNode::ReceiveDirect(const NodeDescriptor& from, uint32_t app_type,
                             ByteSpan payload) {
  switch (static_cast<PastOp>(app_type)) {
    case PastOp::kStoreReplica: {
      StoreReplicaPayload req;
      if (StoreReplicaPayload::Decode(payload, &req)) {
        HandleStoreReplica(req);
      }
      break;
    }
    case PastOp::kDivertStore: {
      DivertStorePayload req;
      if (DivertStorePayload::Decode(payload, &req)) {
        HandleDivertStore(from, req);
      }
      break;
    }
    case PastOp::kDivertResult: {
      DivertResultPayload res;
      if (DivertResultPayload::Decode(payload, &res)) {
        HandleDivertResult(from, res);
      }
      break;
    }
    case PastOp::kStoreReceiptMsg: {
      StoreReceiptPayload msg;
      if (StoreReceiptPayload::Decode(payload, &msg)) {
        HandleStoreReceipt(msg.receipt);
      }
      break;
    }
    case PastOp::kStoreNack: {
      StoreNackPayload nack;
      if (StoreNackPayload::Decode(payload, &nack)) {
        HandleStoreNack(nack);
      }
      break;
    }
    case PastOp::kLookupReply: {
      LookupReplyPayload reply;
      if (LookupReplyPayload::Decode(payload, &reply)) {
        HandleLookupReply(reply);
      }
      break;
    }
    case PastOp::kFetchRequest: {
      FetchRequestPayload req;
      if (FetchRequestPayload::Decode(payload, &req)) {
        HandleFetchRequest(from, req);
      }
      break;
    }
    case PastOp::kFetchReply: {
      FetchReplyPayload reply;
      if (FetchReplyPayload::Decode(payload, &reply)) {
        HandleFetchReply(reply);
      }
      break;
    }
    case PastOp::kReclaimReplica: {
      ReclaimRequestPayload req;
      if (ReclaimRequestPayload::Decode(payload, &req)) {
        HandleReclaimReplica(req);
      }
      break;
    }
    case PastOp::kReclaimReceiptMsg: {
      ReclaimReceiptPayload msg;
      if (ReclaimReceiptPayload::Decode(payload, &msg)) {
        HandleReclaimReceipt(msg.receipt);
      }
      break;
    }
    case PastOp::kCachePush: {
      CachePushPayload push;
      if (CachePushPayload::Decode(payload, &push)) {
        HandleCachePush(push);
      }
      break;
    }
    case PastOp::kReplicaNotify: {
      ReplicaNotifyPayload n;
      if (ReplicaNotifyPayload::Decode(payload, &n)) {
        HandleReplicaNotify(from, n);
      }
      break;
    }
    case PastOp::kAuditChallenge: {
      AuditChallengePayload challenge;
      if (AuditChallengePayload::Decode(payload, &challenge)) {
        HandleAuditChallenge(from, challenge);
      }
      break;
    }
    case PastOp::kAuditResponse: {
      AuditResponsePayload response;
      if (AuditResponsePayload::Decode(payload, &response)) {
        HandleAuditResponse(response);
      }
      break;
    }
    default:
      PAST_WARN("PAST node %u: unexpected direct op %u", overlay_->addr(), app_type);
      break;
  }
}

}  // namespace past
