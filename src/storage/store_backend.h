// StoreBackend — where a FileStore keeps its replicas and pointers.
//
// FileStore owns the PAST semantics (capacity accounting, duplicate and
// admission checks, store.* metrics); the backend is a dumb keyed container
// with two keyspaces. MemoryBackend is the default and holds everything in
// maps; DiskBackend (disk_backend.h) writes through to the durable log
// engine so a restarted node recovers its state.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/pastry/node_id.h"
#include "src/storage/certificates.h"

namespace past {

struct StoredFile {
  FileCertificate cert;
  Bytes content;        // may be empty in synthetic-content mode
  bool diverted = false;  // stored here on behalf of another node
  NodeDescriptor diverted_from;  // the node holding the pointer (if diverted)
};

class StoreBackend {
 public:
  virtual ~StoreBackend() = default;

  // Inserts or replaces the replica keyed by file.cert.file_id. Durable
  // backends may fail with kUnavailable on I/O errors.
  virtual StatusCode Put(StoredFile file) = 0;
  // Null when absent. The pointer stays valid until the entry is mutated.
  virtual const StoredFile* Get(const FileId& id) const = 0;
  [[nodiscard]] virtual bool Remove(const FileId& id) = 0;

  virtual StatusCode PutPointer(const FileId& id,
                                const NodeDescriptor& holder) = 0;
  virtual std::optional<NodeDescriptor> GetPointer(const FileId& id) const = 0;
  [[nodiscard]] virtual bool RemovePointer(const FileId& id) = 0;

  virtual std::vector<FileId> FileIds() const = 0;
  virtual size_t file_count() const = 0;
  virtual size_t pointer_count() const = 0;

  // Flushes acknowledged writes to stable storage (no-op in memory).
  virtual StatusCode Sync() { return StatusCode::kOk; }
};

class MemoryBackend : public StoreBackend {
 public:
  StatusCode Put(StoredFile file) override;
  const StoredFile* Get(const FileId& id) const override;
  [[nodiscard]] bool Remove(const FileId& id) override;

  StatusCode PutPointer(const FileId& id, const NodeDescriptor& holder) override;
  std::optional<NodeDescriptor> GetPointer(const FileId& id) const override;
  [[nodiscard]] bool RemovePointer(const FileId& id) override;

  std::vector<FileId> FileIds() const override;
  size_t file_count() const override { return files_.size(); }
  size_t pointer_count() const override { return pointers_.size(); }

 private:
  std::unordered_map<U160, StoredFile, U160Hash> files_;
  std::unordered_map<U160, NodeDescriptor, U160Hash> pointers_;
};

}  // namespace past

