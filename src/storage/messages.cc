#include "src/storage/messages.h"

namespace past {
namespace {

// All payload decoders require full consumption of the buffer.
template <typename F>
bool DecodeAll(ByteSpan data, F&& body) {
  Reader r(data);
  return body(&r) && r.AtEnd();
}

}  // namespace

Bytes InsertRequestPayload::Encode() const {
  Writer w;
  cert.EncodeTo(&w);
  w.Blob(content);
  EncodeDescriptor(&w, client);
  return w.Take();
}

bool InsertRequestPayload::Decode(ByteSpan data, InsertRequestPayload* out) {
  return DecodeAll(data, [&](Reader* r) {
    return FileCertificate::DecodeFrom(r, &out->cert) && r->Blob(&out->content) &&
           DecodeDescriptor(r, &out->client);
  });
}

Bytes StoreReplicaPayload::Encode() const {
  Writer w;
  cert.EncodeTo(&w);
  w.Blob(content);
  EncodeDescriptor(&w, client);
  w.Bool(divert_allowed);
  return w.Take();
}

bool StoreReplicaPayload::Decode(ByteSpan data, StoreReplicaPayload* out) {
  return DecodeAll(data, [&](Reader* r) {
    return FileCertificate::DecodeFrom(r, &out->cert) && r->Blob(&out->content) &&
           DecodeDescriptor(r, &out->client) && r->Bool(&out->divert_allowed);
  });
}

Bytes DivertStorePayload::Encode() const {
  Writer w;
  cert.EncodeTo(&w);
  w.Blob(content);
  EncodeDescriptor(&w, client);
  EncodeDescriptor(&w, primary);
  return w.Take();
}

bool DivertStorePayload::Decode(ByteSpan data, DivertStorePayload* out) {
  return DecodeAll(data, [&](Reader* r) {
    return FileCertificate::DecodeFrom(r, &out->cert) && r->Blob(&out->content) &&
           DecodeDescriptor(r, &out->client) && DecodeDescriptor(r, &out->primary);
  });
}

Bytes DivertResultPayload::Encode() const {
  Writer w;
  w.Id160(file_id);
  w.Bool(accepted);
  EncodeDescriptor(&w, client);
  return w.Take();
}

bool DivertResultPayload::Decode(ByteSpan data, DivertResultPayload* out) {
  return DecodeAll(data, [&](Reader* r) {
    return r->Id160(&out->file_id) && r->Bool(&out->accepted) &&
           DecodeDescriptor(r, &out->client);
  });
}

Bytes StoreReceiptPayload::Encode() const {
  Writer w;
  receipt.EncodeTo(&w);
  return w.Take();
}

bool StoreReceiptPayload::Decode(ByteSpan data, StoreReceiptPayload* out) {
  return DecodeAll(data,
                   [&](Reader* r) { return StoreReceipt::DecodeFrom(r, &out->receipt); });
}

Bytes StoreNackPayload::Encode() const {
  Writer w;
  w.Id160(file_id);
  w.U8(reason);
  return w.Take();
}

bool StoreNackPayload::Decode(ByteSpan data, StoreNackPayload* out) {
  return DecodeAll(data, [&](Reader* r) {
    return r->Id160(&out->file_id) && r->U8(&out->reason);
  });
}

Bytes LookupRequestPayload::Encode() const {
  Writer w;
  w.Id160(file_id);
  EncodeDescriptor(&w, client);
  return w.Take();
}

bool LookupRequestPayload::Decode(ByteSpan data, LookupRequestPayload* out) {
  return DecodeAll(data, [&](Reader* r) {
    return r->Id160(&out->file_id) && DecodeDescriptor(r, &out->client);
  });
}

Bytes LookupReplyPayload::Encode() const {
  Writer w;
  cert.EncodeTo(&w);
  w.Blob(content);
  w.Bool(from_cache);
  EncodeDescriptor(&w, replier);
  return w.Take();
}

bool LookupReplyPayload::Decode(ByteSpan data, LookupReplyPayload* out) {
  return DecodeAll(data, [&](Reader* r) {
    return FileCertificate::DecodeFrom(r, &out->cert) && r->Blob(&out->content) &&
           r->Bool(&out->from_cache) && DecodeDescriptor(r, &out->replier);
  });
}

Bytes FetchRequestPayload::Encode() const {
  Writer w;
  w.Id160(file_id);
  EncodeDescriptor(&w, client);
  w.Bool(for_lookup);
  return w.Take();
}

bool FetchRequestPayload::Decode(ByteSpan data, FetchRequestPayload* out) {
  return DecodeAll(data, [&](Reader* r) {
    return r->Id160(&out->file_id) && DecodeDescriptor(r, &out->client) &&
           r->Bool(&out->for_lookup);
  });
}

Bytes FetchReplyPayload::Encode() const {
  Writer w;
  w.Bool(found);
  cert.EncodeTo(&w);
  w.Blob(content);
  return w.Take();
}

bool FetchReplyPayload::Decode(ByteSpan data, FetchReplyPayload* out) {
  return DecodeAll(data, [&](Reader* r) {
    return r->Bool(&out->found) && FileCertificate::DecodeFrom(r, &out->cert) &&
           r->Blob(&out->content);
  });
}

Bytes ReclaimRequestPayload::Encode() const {
  Writer w;
  cert.EncodeTo(&w);
  EncodeDescriptor(&w, client);
  return w.Take();
}

bool ReclaimRequestPayload::Decode(ByteSpan data, ReclaimRequestPayload* out) {
  return DecodeAll(data, [&](Reader* r) {
    return ReclaimCertificate::DecodeFrom(r, &out->cert) &&
           DecodeDescriptor(r, &out->client);
  });
}

Bytes ReclaimReceiptPayload::Encode() const {
  Writer w;
  receipt.EncodeTo(&w);
  return w.Take();
}

bool ReclaimReceiptPayload::Decode(ByteSpan data, ReclaimReceiptPayload* out) {
  return DecodeAll(
      data, [&](Reader* r) { return ReclaimReceipt::DecodeFrom(r, &out->receipt); });
}

Bytes CachePushPayload::Encode() const {
  Writer w;
  cert.EncodeTo(&w);
  w.Blob(content);
  return w.Take();
}

bool CachePushPayload::Decode(ByteSpan data, CachePushPayload* out) {
  return DecodeAll(data, [&](Reader* r) {
    return FileCertificate::DecodeFrom(r, &out->cert) && r->Blob(&out->content);
  });
}

Bytes ReplicaNotifyPayload::Encode() const {
  Writer w;
  w.Id160(file_id);
  w.U64(file_size);
  return w.Take();
}

bool ReplicaNotifyPayload::Decode(ByteSpan data, ReplicaNotifyPayload* out) {
  return DecodeAll(data, [&](Reader* r) {
    return r->Id160(&out->file_id) && r->U64(&out->file_size);
  });
}

Bytes AuditChallengePayload::Encode() const {
  Writer w;
  w.Id160(file_id);
  w.U64(nonce);
  return w.Take();
}

bool AuditChallengePayload::Decode(ByteSpan data, AuditChallengePayload* out) {
  return DecodeAll(data, [&](Reader* r) {
    return r->Id160(&out->file_id) && r->U64(&out->nonce);
  });
}

Bytes AuditResponsePayload::Encode() const {
  Writer w;
  w.Id160(file_id);
  w.U64(nonce);
  w.Bool(has_file);
  w.Blob(digest);
  return w.Take();
}

bool AuditResponsePayload::Decode(ByteSpan data, AuditResponsePayload* out) {
  return DecodeAll(data, [&](Reader* r) {
    return r->Id160(&out->file_id) && r->U64(&out->nonce) && r->Bool(&out->has_file) &&
           r->Blob(&out->digest);
  });
}

}  // namespace past
