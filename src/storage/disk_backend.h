// DiskBackend — a StoreBackend written through to the durable log engine.
//
// Every mutation is appended to the engine before the in-memory mirror is
// updated, so Open() on the same directory after a crash or restart rebuilds
// exactly the acknowledged (and, with sync, durable) state. Replica values
// are serialized StoredFiles; pointer values are serialized NodeDescriptors.
//
// The engine is a ShardedDiskStore: with the default options (one shard, no
// group commit, no background compaction) it behaves — and lays its files
// out — exactly like the original single DiskStore, keeping existing state
// directories and the deterministic sim paths untouched. The serving knobs
// in DiskStoreOptions (shard_count, group_commit, background_compaction,
// cache_bytes) switch on the concurrent machinery.
#pragma once

#include <memory>
#include <string>

#include "src/diskstore/sharded_store.h"
#include "src/storage/store_backend.h"

namespace past {

class DiskBackend : public StoreBackend {
 public:
  // Opens (creating if needed) the engine in `dir`, replays its log, and
  // decodes the recovered values. Fails with kCorruption when a recovered
  // value does not decode, or with whatever DiskStore::Open reports.
  static Result<std::unique_ptr<DiskBackend>> Open(
      const std::string& dir, const DiskStoreOptions& options);

  StatusCode Put(StoredFile file) override;
  const StoredFile* Get(const FileId& id) const override;
  [[nodiscard]] bool Remove(const FileId& id) override;

  StatusCode PutPointer(const FileId& id, const NodeDescriptor& holder) override;
  std::optional<NodeDescriptor> GetPointer(const FileId& id) const override;
  [[nodiscard]] bool RemovePointer(const FileId& id) override;

  std::vector<FileId> FileIds() const override;
  size_t file_count() const override { return mirror_.file_count(); }
  size_t pointer_count() const override { return mirror_.pointer_count(); }

  StatusCode Sync() override { return engine_->Sync(); }

  ShardedDiskStore* engine() { return engine_.get(); }

 private:
  explicit DiskBackend(std::unique_ptr<ShardedDiskStore> engine);

  // Decodes everything the engine recovered into the mirror.
  StatusCode LoadRecovered();

  std::unique_ptr<ShardedDiskStore> engine_;
  // Serves reads; the engine is only read at Open() and compaction.
  MemoryBackend mirror_;
};

}  // namespace past

