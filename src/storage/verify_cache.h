// VerifyCache — bounded memo cache of RSA signature verification results.
//
// The same certificates and card identities are verified over and over as a
// file's replicas spread, as lookups return the certificate to clients, and
// as maintenance re-checks stored replicas. An RSA verify costs microseconds;
// a memo lookup costs one SHA-1 over the inputs plus a hash-map probe. The
// cache keys on SHA-1 over the length-prefixed triple
// (message ‖ signature ‖ encoded public key), so any change to any input
// yields a different key, and it stores the boolean outcome — failed
// verifications are memoized too, which keeps repeated garbage cheap.
//
// Entries are evicted FIFO once `max_entries` is reached (verification
// results never go stale, so recency tracking buys nothing over insertion
// order). Each PastNode owns its own cache, so a restarted node starts
// empty and never serves memoized results across an identity change.
//
// Reports "crypto.verify_total", "crypto.verify_cache_hit", and
// "crypto.verify_cache_miss" counters when built with a MetricsRegistry.
#pragma once

#include <cstddef>
#include <deque>
#include <unordered_map>

#include "src/common/bytes.h"
#include "src/common/u160.h"
#include "src/crypto/rsa.h"
#include "src/obs/metrics.h"

namespace past {

class VerifyCache {
 public:
  // `max_entries` bounds the memo table; 0 disables memoization (every call
  // verifies, counters still tick). `metrics` may be null.
  explicit VerifyCache(size_t max_entries, MetricsRegistry* metrics);

  VerifyCache(const VerifyCache&) = delete;
  VerifyCache& operator=(const VerifyCache&) = delete;

  // RsaVerifyMessage(key, message, signature), memoized.
  [[nodiscard]] bool VerifyMessage(const RsaPublicKey& key, ByteSpan message,
                                   ByteSpan signature);

  size_t size() const { return entries_.size(); }
  void Clear();

 private:
  static U160 KeyFor(const RsaPublicKey& key, ByteSpan message, ByteSpan signature);

  size_t max_entries_;
  std::unordered_map<U160, bool, U160Hash> entries_;
  std::deque<U160> fifo_;  // insertion order, oldest first

  Counter* verify_total_ = nullptr;
  Counter* hits_ = nullptr;
  Counter* misses_ = nullptr;
};

}  // namespace past
