#include "src/storage/disk_backend.h"

#include <utility>

#include "src/common/serializer.h"
#include "src/pastry/messages.h"

namespace past {
namespace {

Bytes EncodeStoredFile(const StoredFile& file) {
  Writer w;
  file.cert.EncodeTo(&w);
  w.Blob(ByteSpan(file.content.data(), file.content.size()));
  w.Bool(file.diverted);
  EncodeDescriptor(&w, file.diverted_from);
  return w.Take();
}

bool DecodeStoredFile(ByteSpan data, StoredFile* out) {
  Reader r(data);
  return FileCertificate::DecodeFrom(&r, &out->cert) && r.Blob(&out->content) &&
         r.Bool(&out->diverted) && DecodeDescriptor(&r, &out->diverted_from) &&
         r.AtEnd();
}

Bytes EncodePointer(const NodeDescriptor& holder) {
  Writer w;
  EncodeDescriptor(&w, holder);
  return w.Take();
}

bool DecodePointer(ByteSpan data, NodeDescriptor* out) {
  Reader r(data);
  return DecodeDescriptor(&r, out) && r.AtEnd();
}

}  // namespace

DiskBackend::DiskBackend(std::unique_ptr<ShardedDiskStore> engine)
    : engine_(std::move(engine)) {}

Result<std::unique_ptr<DiskBackend>> DiskBackend::Open(
    const std::string& dir, const DiskStoreOptions& options) {
  Result<std::unique_ptr<ShardedDiskStore>> engine =
      ShardedDiskStore::Open(dir, options);
  if (!engine.ok()) {
    return engine.status();
  }
  std::unique_ptr<DiskBackend> backend(
      new DiskBackend(std::move(engine).value()));
  StatusCode status = backend->LoadRecovered();
  if (status != StatusCode::kOk) {
    return status;
  }
  return backend;
}

StatusCode DiskBackend::LoadRecovered() {
  for (const U160& key : engine_->Keys()) {
    Result<Bytes> value = engine_->Get(key);
    if (!value.ok()) {
      return value.status();
    }
    StoredFile file;
    if (!DecodeStoredFile(ByteSpan(value.value().data(), value.value().size()),
                          &file) ||
        file.cert.file_id != key) {
      return StatusCode::kCorruption;
    }
    if (StatusCode status = mirror_.Put(std::move(file));
        status != StatusCode::kOk) {
      return status;
    }
  }
  for (const U160& key : engine_->PointerKeys()) {
    Result<Bytes> value = engine_->GetPointer(key);
    if (!value.ok()) {
      return value.status();
    }
    NodeDescriptor holder;
    if (!DecodePointer(ByteSpan(value.value().data(), value.value().size()),
                       &holder)) {
      return StatusCode::kCorruption;
    }
    if (StatusCode status = mirror_.PutPointer(key, holder);
        status != StatusCode::kOk) {
      return status;
    }
  }
  return StatusCode::kOk;
}

StatusCode DiskBackend::Put(StoredFile file) {
  Bytes value = EncodeStoredFile(file);
  StatusCode status =
      engine_->Put(file.cert.file_id, ByteSpan(value.data(), value.size()));
  if (status != StatusCode::kOk) {
    return status;
  }
  return mirror_.Put(std::move(file));
}

const StoredFile* DiskBackend::Get(const FileId& id) const {
  return mirror_.Get(id);
}

bool DiskBackend::Remove(const FileId& id) {
  if (engine_->Remove(id) != StatusCode::kOk) {
    return false;
  }
  return mirror_.Remove(id);
}

StatusCode DiskBackend::PutPointer(const FileId& id,
                                   const NodeDescriptor& holder) {
  Bytes value = EncodePointer(holder);
  StatusCode status =
      engine_->PutPointer(id, ByteSpan(value.data(), value.size()));
  if (status != StatusCode::kOk) {
    return status;
  }
  return mirror_.PutPointer(id, holder);
}

std::optional<NodeDescriptor> DiskBackend::GetPointer(const FileId& id) const {
  return mirror_.GetPointer(id);
}

bool DiskBackend::RemovePointer(const FileId& id) {
  if (engine_->RemovePointer(id) != StatusCode::kOk) {
    return false;
  }
  return mirror_.RemovePointer(id);
}

std::vector<FileId> DiskBackend::FileIds() const { return mirror_.FileIds(); }

}  // namespace past
