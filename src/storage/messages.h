// PAST application payloads, carried inside Pastry routed / direct messages.
//
// Routed operations (keyed by the 128 msbs of the fileId): insert, lookup,
// reclaim. Direct operations: replica placement and diversion, receipts back
// to the client, fetches, cache pushes, replica maintenance and audits.
#pragma once

#include "src/common/serializer.h"
#include "src/pastry/messages.h"
#include "src/storage/certificates.h"

namespace past {

enum class PastOp : uint32_t {
  // Routed by fileId.
  kInsertRequest = 100,
  kLookupRequest = 101,
  kReclaimRequest = 102,
  // Direct.
  kStoreReplica = 110,    // root -> replica-set member
  kDivertStore = 111,     // overloaded member -> diversion target
  kDivertResult = 112,    // diversion target -> member
  kStoreReceiptMsg = 113, // member -> client
  kStoreNack = 114,       // member -> client
  kLookupReply = 115,     // holder -> client
  kFetchRequest = 116,    // root/peer -> holder
  kFetchReply = 117,      // holder -> requester (or straight to client)
  kReclaimReplica = 118,  // root -> member
  kReclaimReceiptMsg = 119,  // member -> client
  kCachePush = 120,       // holder -> node near the client
  kReplicaNotify = 121,   // member -> new member after leaf-set change
  kAuditChallenge = 122,
  kAuditResponse = 123,
};

struct InsertRequestPayload {
  FileCertificate cert;
  Bytes content;
  NodeDescriptor client;

  Bytes Encode() const;
  [[nodiscard]] static bool Decode(ByteSpan data, InsertRequestPayload* out);
};

struct StoreReplicaPayload {
  FileCertificate cert;
  Bytes content;
  NodeDescriptor client;
  bool divert_allowed = true;

  Bytes Encode() const;
  [[nodiscard]] static bool Decode(ByteSpan data, StoreReplicaPayload* out);
};

struct DivertStorePayload {
  FileCertificate cert;
  Bytes content;
  NodeDescriptor client;
  NodeDescriptor primary;  // the node that keeps the pointer

  Bytes Encode() const;
  [[nodiscard]] static bool Decode(ByteSpan data, DivertStorePayload* out);
};

struct DivertResultPayload {
  FileId file_id;
  bool accepted = false;
  NodeDescriptor client;

  Bytes Encode() const;
  [[nodiscard]] static bool Decode(ByteSpan data, DivertResultPayload* out);
};

struct StoreReceiptPayload {
  StoreReceipt receipt;

  Bytes Encode() const;
  [[nodiscard]] static bool Decode(ByteSpan data, StoreReceiptPayload* out);
};

struct StoreNackPayload {
  FileId file_id;
  uint8_t reason = 0;  // StatusCode, narrowed

  Bytes Encode() const;
  [[nodiscard]] static bool Decode(ByteSpan data, StoreNackPayload* out);
};

struct LookupRequestPayload {
  FileId file_id;
  NodeDescriptor client;

  Bytes Encode() const;
  [[nodiscard]] static bool Decode(ByteSpan data, LookupRequestPayload* out);
};

struct LookupReplyPayload {
  FileCertificate cert;
  Bytes content;
  bool from_cache = false;
  NodeDescriptor replier;

  Bytes Encode() const;
  [[nodiscard]] static bool Decode(ByteSpan data, LookupReplyPayload* out);
};

struct FetchRequestPayload {
  FileId file_id;
  // When valid, the holder answers the client directly (lookup indirection
  // for diverted replicas); otherwise it answers the requester (maintenance).
  NodeDescriptor client;
  bool for_lookup = false;

  Bytes Encode() const;
  [[nodiscard]] static bool Decode(ByteSpan data, FetchRequestPayload* out);
};

struct FetchReplyPayload {
  bool found = false;
  FileCertificate cert;
  Bytes content;

  Bytes Encode() const;
  [[nodiscard]] static bool Decode(ByteSpan data, FetchReplyPayload* out);
};

struct ReclaimRequestPayload {
  ReclaimCertificate cert;
  NodeDescriptor client;

  Bytes Encode() const;
  [[nodiscard]] static bool Decode(ByteSpan data, ReclaimRequestPayload* out);
};

struct ReclaimReceiptPayload {
  ReclaimReceipt receipt;

  Bytes Encode() const;
  [[nodiscard]] static bool Decode(ByteSpan data, ReclaimReceiptPayload* out);
};

struct CachePushPayload {
  FileCertificate cert;
  Bytes content;

  Bytes Encode() const;
  [[nodiscard]] static bool Decode(ByteSpan data, CachePushPayload* out);
};

struct ReplicaNotifyPayload {
  FileId file_id;
  uint64_t file_size = 0;

  Bytes Encode() const;
  [[nodiscard]] static bool Decode(ByteSpan data, ReplicaNotifyPayload* out);
};

struct AuditChallengePayload {
  FileId file_id;
  uint64_t nonce = 0;

  Bytes Encode() const;
  [[nodiscard]] static bool Decode(ByteSpan data, AuditChallengePayload* out);
};

struct AuditResponsePayload {
  FileId file_id;
  uint64_t nonce = 0;
  bool has_file = false;
  Bytes digest;  // SHA-256(content || nonce) — or size-keyed digest for
                 // synthetic content

  Bytes Encode() const;
  [[nodiscard]] static bool Decode(ByteSpan data, AuditResponsePayload* out);
};

}  // namespace past

