// Unused-capacity file cache with GreedyDual-Size eviction.
//
// Any PAST node may cache copies of files that pass through it (on insert
// forwarding or lookup serving) in the portion of its disk not occupied by
// primary replicas. Cached copies are evicted on demand — both by the cache
// policy and whenever the primary store needs the space back. GreedyDual-
// Size (the policy used by the PAST storage-management paper) favors small
// and popular files: each entry carries H = L + cost/size, eviction removes
// the minimum-H entry and raises the floor L to that value.
#pragma once

#include <map>
#include <unordered_map>

#include "src/obs/metrics.h"
#include "src/storage/certificates.h"

namespace past {

enum class CachePolicy { kNone, kLru, kGreedyDualSize };

struct CachedFile {
  FileCertificate cert;
  Bytes content;
};

class Cache {
 public:
  // With a registry, hit/miss/insert/evict counts and the used-bytes gauge
  // are also mirrored into the shared "cache.*" instruments (aggregated
  // across every cache on the same registry).
  explicit Cache(CachePolicy policy, MetricsRegistry* metrics = nullptr)
      : policy_(policy) {
    if (metrics != nullptr) {
      hits_ = metrics->GetCounter("cache.hits");
      misses_ = metrics->GetCounter("cache.misses");
      insertions_ = metrics->GetCounter("cache.insertions");
      evictions_ = metrics->GetCounter("cache.evictions");
      used_bytes_ = metrics->GetGauge("cache.used_bytes");
    }
  }

  // Inserts a file, evicting lower-priority entries while the cache exceeds
  // `available` bytes. Returns false if the policy is kNone, the file cannot
  // fit, or it is already cached.
  bool Insert(const FileCertificate& cert, Bytes content, uint64_t available);

  // Lookup; bumps the entry's priority on hit.
  const CachedFile* Get(const FileId& id);
  bool Contains(const FileId& id) const { return entries_.count(id) > 0; }
  bool Remove(const FileId& id);

  // Frees cached bytes until at most `max_bytes` are used (called when the
  // primary store reclaims space from the cache). Returns bytes evicted.
  uint64_t ShrinkTo(uint64_t max_bytes);

  uint64_t used() const { return used_; }
  size_t entry_count() const { return entries_.size(); }
  CachePolicy policy() const { return policy_; }

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Entry {
    CachedFile file;
    // Priority handle into queue_: H for GD-S, logical clock for LRU.
    std::multimap<double, U160>::iterator queue_pos;
  };

  double PriorityFor(uint64_t size) const;
  void EvictOne();

  // Adjusts used_ and keeps the aggregate gauge in sync.
  void AccountUsed(int64_t delta);

  CachePolicy policy_;
  uint64_t used_ = 0;
  double inflation_ = 0.0;  // L for GD-S; logical clock for LRU
  std::unordered_map<U160, Entry, U160Hash> entries_;
  std::multimap<double, U160> queue_;  // priority -> fileId (min first)
  Stats stats_;

  // Shared registry instruments; null when metrics are off.
  Counter* hits_ = nullptr;
  Counter* misses_ = nullptr;
  Counter* insertions_ = nullptr;
  Counter* evictions_ = nullptr;
  Gauge* used_bytes_ = nullptr;
};

}  // namespace past

