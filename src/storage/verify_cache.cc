#include "src/storage/verify_cache.h"

#include "src/crypto/sha1.h"

namespace past {

VerifyCache::VerifyCache(size_t max_entries, MetricsRegistry* metrics)
    : max_entries_(max_entries) {
  if (metrics != nullptr) {
    verify_total_ = metrics->GetCounter("crypto.verify_total");
    hits_ = metrics->GetCounter("crypto.verify_cache_hit");
    misses_ = metrics->GetCounter("crypto.verify_cache_miss");
  }
}

U160 VerifyCache::KeyFor(const RsaPublicKey& key, ByteSpan message,
                         ByteSpan signature) {
  Sha1 h;
  const Bytes key_bytes = key.Encode();
  // Length-prefix each part so (m, s) and (m', s') with m‖s == m'‖s' cannot
  // collide by concatenation.
  const auto feed = [&h](ByteSpan part) {
    const uint64_t n = part.size();
    uint8_t len[8];
    for (int i = 0; i < 8; ++i) {
      len[i] = static_cast<uint8_t>(n >> (8 * i));
    }
    h.Update(ByteSpan(len, sizeof(len)));
    h.Update(part);
  };
  feed(message);
  feed(signature);
  feed(ByteSpan(key_bytes.data(), key_bytes.size()));
  const auto digest = h.Finish();
  return U160::FromBytes(ByteSpan(digest.data(), digest.size()));
}

bool VerifyCache::VerifyMessage(const RsaPublicKey& key, ByteSpan message,
                                ByteSpan signature) {
  if (verify_total_ != nullptr) {
    verify_total_->Inc();
  }
  if (max_entries_ == 0) {
    return RsaVerifyMessage(key, message, signature);
  }
  const U160 memo_key = KeyFor(key, message, signature);
  if (const auto it = entries_.find(memo_key); it != entries_.end()) {
    if (hits_ != nullptr) {
      hits_->Inc();
    }
    return it->second;
  }
  if (misses_ != nullptr) {
    misses_->Inc();
  }
  const bool ok = RsaVerifyMessage(key, message, signature);
  if (entries_.size() >= max_entries_) {
    entries_.erase(fifo_.front());
    fifo_.pop_front();
  }
  fifo_.push_back(memo_key);
  entries_.emplace(memo_key, ok);
  return ok;
}

void VerifyCache::Clear() {
  entries_.clear();
  fifo_.clear();
}

}  // namespace past
