// FileStore — the primary replica store of a PAST node.
//
// Tracks the node's advertised capacity, the replicas it holds (primary and
// diverted), and pointers to replicas it diverted elsewhere (the indirection
// of the SOSP storage-management scheme). Content bytes may be empty for
// synthetic workloads; accounting always uses the certified file size.
//
// Replicas and pointers live in a StoreBackend: MemoryBackend by default, or
// DiskBackend for a node with a state directory. FileStore owns the PAST
// semantics either way — capacity accounting (rebuilt from the backend's
// recovered contents on construction), duplicate and fit checks, and the
// store.* metrics.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "src/common/status.h"
#include "src/obs/metrics.h"
#include "src/pastry/node_id.h"
#include "src/storage/store_backend.h"

namespace past {

class FileStore {
 public:
  // With a registry, accept/reject counts and capacity/used-bytes gauges are
  // mirrored into the shared "store.*" instruments (aggregated across every
  // store on the same registry, giving system-wide utilization).
  explicit FileStore(uint64_t capacity, MetricsRegistry* metrics = nullptr);
  // Uses `backend` instead of a fresh MemoryBackend; anything it already
  // holds (a recovered DiskBackend) is counted into used() immediately.
  FileStore(uint64_t capacity, std::unique_ptr<StoreBackend> backend,
            MetricsRegistry* metrics = nullptr);
  ~FileStore();

  FileStore(const FileStore&) = delete;
  FileStore& operator=(const FileStore&) = delete;

  uint64_t capacity() const { return capacity_; }
  uint64_t used() const { return used_; }
  uint64_t free_space() const { return capacity_ - used_; }
  double utilization() const {
    return capacity_ == 0 ? 0.0 : static_cast<double>(used_) / capacity_;
  }

  // Stores a replica. Fails with kInsufficientStorage if it does not fit and
  // kAlreadyExists on duplicate fileId.
  StatusCode Put(StoredFile file);
  bool Has(const FileId& id) const { return backend_->Get(id) != nullptr; }
  const StoredFile* Get(const FileId& id) const { return backend_->Get(id); }
  // Removes the replica and releases its space. Returns the freed size, or
  // nullopt if absent.
  std::optional<uint64_t> Remove(const FileId& id);

  // Diverted-replica pointers: fileId -> node actually holding the replica.
  // Durable backends may fail with kUnavailable on I/O errors.
  StatusCode PutPointer(const FileId& id, const NodeDescriptor& holder);
  std::optional<NodeDescriptor> GetPointer(const FileId& id) const;
  [[nodiscard]] bool RemovePointer(const FileId& id);

  std::vector<FileId> FileIds() const { return backend_->FileIds(); }
  size_t file_count() const { return backend_->file_count(); }
  size_t pointer_count() const { return backend_->pointer_count(); }

  // Flushes acknowledged writes to stable storage (no-op in memory).
  StatusCode Sync() { return backend_->Sync(); }
  StoreBackend* backend() { return backend_.get(); }

 private:
  void AccountUsed(int64_t delta);

  uint64_t capacity_;
  uint64_t used_ = 0;
  std::unique_ptr<StoreBackend> backend_;

  // Shared registry instruments; null when metrics are off.
  Counter* puts_ = nullptr;
  Counter* rejects_ = nullptr;
  Counter* removes_ = nullptr;
  Gauge* used_bytes_ = nullptr;
  Gauge* capacity_bytes_ = nullptr;
};

// Admission policy from the SOSP storage-management scheme: a node accepts a
// replica only if the file is small relative to its remaining free space,
// with a stricter threshold for diverted replicas (which have already been
// pushed off their primary node).
struct StoragePolicy {
  double t_pri = 0.1;   // max size/free ratio for a primary replica
  double t_div = 0.05;  // max size/free ratio for a diverted replica

  bool AcceptPrimary(uint64_t size, uint64_t free_space) const {
    return size <= free_space &&
           static_cast<double>(size) <= t_pri * static_cast<double>(free_space);
  }
  bool AcceptDiverted(uint64_t size, uint64_t free_space) const {
    return size <= free_space &&
           static_cast<double>(size) <= t_div * static_cast<double>(free_space);
  }
};

}  // namespace past

