// PastNetwork — a complete simulated PAST deployment.
//
// Owns the broker, issues a smartcard per node (nodeId = hash of the card's
// public key, as the paper specifies), grows the Pastry overlay through the
// real join protocol, and attaches a PastNode to every overlay node. Also
// provides synchronous wrappers over the asynchronous client API for tests
// and experiments.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/pastry/overlay.h"
#include "src/storage/past_node.h"

namespace past {

struct PastNetworkOptions {
  OverlayOptions overlay;
  PastConfig past;
  BrokerOptions broker;
  uint64_t default_node_capacity = 64ULL << 20;  // contributed storage (64 MiB)
  uint64_t default_user_quota = 256ULL << 20;    // per-card usage quota
};

class PastNetwork {
 public:
  explicit PastNetwork(const PastNetworkOptions& options);

  // Adds a node with explicit capacity/quota (capacity may be zero: a pure
  // client access point). Returns nullptr if the broker refuses the card.
  PastNode* AddNode(uint64_t capacity, uint64_t quota);
  PastNode* AddNode() {
    return AddNode(options_.default_node_capacity, options_.default_user_quota);
  }
  // Adds a read-only client access point: no smartcard, no storage, no
  // quota — it can only route and look files up.
  PastNode* AddReadOnlyClient();
  void Build(int n);

  Broker& broker() { return broker_; }
  Overlay& overlay() { return overlay_; }
  EventQueue& queue() { return overlay_.queue(); }

  size_t size() const { return nodes_.size(); }
  PastNode* node(size_t i) { return nodes_[i].get(); }
  PastNode* NodeByAddr(NodeAddr addr);
  PastNode* RandomLiveNode();

  void Run(SimTime duration) { overlay_.Run(duration); }
  void RunAll() { overlay_.RunAll(); }

  // --- synchronous wrappers (drive the event queue until completion) ---------

  Result<FileId> InsertSync(PastNode* client, std::string name, Bytes content,
                            uint32_t k = 0);
  Result<FileId> InsertSyntheticSync(PastNode* client, std::string name, uint64_t size,
                                     uint32_t k = 0);
  Result<PastNode::LookupOutcome> LookupSync(PastNode* client, const FileId& id);
  StatusCode ReclaimSync(PastNode* client, const FileId& id);
  bool AuditSync(PastNode* auditor, NodeAddr target, const FileId& id,
                 const FileCertificate& cert);

  // Kills a node silently (crash) and lets its PAST state die with it.
  void CrashNode(size_t i);

  // Reboots a crashed node: a fresh PastNode (same smartcard, same nodeId)
  // reopens the old node's state directory — recovering its replica store if
  // the network runs with a state_dir — and rejoins the overlay through a
  // live bootstrap node. Returns the replacement node.
  PastNode* RestartNode(size_t i);

  // How many live nodes currently hold a (non-diverted or diverted) replica.
  int CountReplicas(const FileId& id) const;

  struct StorageSummary {
    uint64_t capacity = 0;
    uint64_t primary_used = 0;
    uint64_t cache_used = 0;
    size_t files = 0;
    size_t pointers = 0;
    double utilization() const {
      return capacity == 0 ? 0.0
                           : static_cast<double>(primary_used) / static_cast<double>(capacity);
    }
  };
  StorageSummary Summary() const;

  const PastNetworkOptions& options() const { return options_; }
  Rng& rng() { return overlay_.rng(); }

 private:
  // Runs the queue until `done` or the deadline passes.
  void DriveUntil(const bool& done, SimTime budget);

  PastNetworkOptions options_;
  Broker broker_;
  Overlay overlay_;
  std::vector<std::unique_ptr<PastNode>> nodes_;
};

}  // namespace past

