#include "src/storage/cache.h"

#include "src/common/check.h"

namespace past {

double Cache::PriorityFor(uint64_t size) const {
  if (policy_ == CachePolicy::kGreedyDualSize) {
    // H = L + cost/size with uniform cost: small files earn higher priority.
    return inflation_ + 1.0 / static_cast<double>(size == 0 ? 1 : size);
  }
  // LRU: priority is just the logical access clock.
  return inflation_;
}

bool Cache::Insert(const FileCertificate& cert, Bytes content, uint64_t available) {
  if (policy_ == CachePolicy::kNone) {
    return false;
  }
  const FileId id = cert.file_id;
  if (entries_.count(id) > 0) {
    return false;
  }
  const uint64_t size = cert.file_size;
  if (size > available) {
    return false;
  }
  while (used_ + size > available && !entries_.empty()) {
    EvictOne();
  }
  if (used_ + size > available) {
    return false;
  }
  if (policy_ == CachePolicy::kLru) {
    inflation_ += 1.0;
  }
  Entry entry;
  entry.file.cert = cert;
  entry.file.content = std::move(content);
  entry.queue_pos = queue_.emplace(PriorityFor(size), id);
  AccountUsed(static_cast<int64_t>(size));
  entries_.emplace(id, std::move(entry));
  ++stats_.insertions;
  if (insertions_ != nullptr) {
    insertions_->Inc();
  }
  return true;
}

const CachedFile* Cache::Get(const FileId& id) {
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    ++stats_.misses;
    if (misses_ != nullptr) {
      misses_->Inc();
    }
    return nullptr;
  }
  ++stats_.hits;
  if (hits_ != nullptr) {
    hits_->Inc();
  }
  // Refresh priority: GD-S re-computes H with the current inflation floor,
  // LRU advances the clock.
  if (policy_ == CachePolicy::kLru) {
    inflation_ += 1.0;
  }
  queue_.erase(it->second.queue_pos);
  it->second.queue_pos = queue_.emplace(PriorityFor(it->second.file.cert.file_size), id);
  return &it->second.file;
}

bool Cache::Remove(const FileId& id) {
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    return false;
  }
  AccountUsed(-static_cast<int64_t>(it->second.file.cert.file_size));
  queue_.erase(it->second.queue_pos);
  entries_.erase(it);
  return true;
}

void Cache::EvictOne() {
  PAST_CHECK(!entries_.empty());
  auto victim = queue_.begin();
  if (policy_ == CachePolicy::kGreedyDualSize) {
    // Raise the inflation floor to the evicted priority so future entries
    // compete fairly against long-lived popular ones.
    inflation_ = victim->first;
  }
  auto it = entries_.find(victim->second);
  PAST_CHECK(it != entries_.end());
  AccountUsed(-static_cast<int64_t>(it->second.file.cert.file_size));
  entries_.erase(it);
  queue_.erase(victim);
  ++stats_.evictions;
  if (evictions_ != nullptr) {
    evictions_->Inc();
  }
}

void Cache::AccountUsed(int64_t delta) {
  used_ = static_cast<uint64_t>(static_cast<int64_t>(used_) + delta);
  if (used_bytes_ != nullptr) {
    used_bytes_->Add(static_cast<double>(delta));
  }
}

uint64_t Cache::ShrinkTo(uint64_t max_bytes) {
  uint64_t evicted = 0;
  while (used_ > max_bytes && !entries_.empty()) {
    uint64_t before = used_;
    EvictOne();
    evicted += before - used_;
  }
  return evicted;
}

}  // namespace past
