// Smartcards and the broker (Section 2.1).
//
// Each PAST user and node holds a smartcard: a tamper-proof key holder that
// issues/verifies certificates and maintains the storage quota. The broker is
// the trusted third party that certifies cards and balances storage supply
// (contributed by node cards) against demand (usage quotas on user cards).
//
// This software implementation preserves the protocol exactly: the quota
// counters live inside the card object, certificates are only produced
// through card methods, and "tamper-proofness" becomes a set of invariants
// the test suite enforces.
#pragma once

#include <memory>
#include <string_view>
#include <unordered_set>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/storage/certificates.h"

namespace past {

class Smartcard {
 public:
  // Cards are created by Broker::IssueCard.
  Smartcard(RsaKeyPair key, Bytes broker_signature, RsaPublicKey broker_key,
            uint64_t usage_quota, uint64_t contributed_storage, int64_t expiry);

  const CardIdentity& identity() const { return identity_; }
  const RsaPublicKey& broker_key() const { return broker_key_; }
  NodeId DerivedNodeId() const { return identity_.DerivedNodeId(); }

  // --- quota ------------------------------------------------------------------
  uint64_t usage_quota() const { return usage_quota_; }
  uint64_t quota_used() const { return quota_used_; }
  uint64_t quota_remaining() const { return usage_quota_ - quota_used_; }
  // Storage this card's node pledges to the system (possibly zero).
  uint64_t contributed_storage() const { return contributed_storage_; }
  int64_t expiry() const { return expiry_; }

  // --- user-side operations ------------------------------------------------------
  // Issues a file certificate, debiting size * k against the quota. The
  // content hash is computed by the client node (the card only signs it); the
  // fileId is computed by the card. Fails with kQuotaExceeded or
  // kCertificateExpired.
  Result<FileCertificate> IssueFileCertificate(std::string_view name, uint64_t size,
                                               ByteSpan content_hash, uint32_t k,
                                               uint64_t salt, int64_t date);

  // Credits back a failed insertion (no receipts obtained). Allowed once per
  // fileId, and only for certificates this card issued.
  StatusCode RefundFileCertificate(const FileCertificate& cert);

  ReclaimCertificate IssueReclaimCertificate(const FileId& file_id, int64_t date);

  // Presents a reclaim receipt: after verification the quota is credited by
  // size * k (mirroring the debit at insertion). Idempotent per fileId.
  StatusCode CreditReclaim(const ReclaimReceipt& receipt, const FileCertificate& cert);

  // --- node-side operations --------------------------------------------------------
  StoreReceipt IssueStoreReceipt(const FileId& file_id, bool diverted, int64_t ts);
  ReclaimReceipt IssueReclaimReceipt(const FileId& file_id, uint64_t bytes, int64_t ts);

  // --- verification helpers (delegate to the certificate types; pass a
  // VerifyCache to memoize the underlying RSA checks) ------------------------------
  [[nodiscard]] bool VerifyFileCertificate(const FileCertificate& cert,
                                           VerifyCache* cache = nullptr) const {
    return cert.Verify(broker_key_, cache);
  }
  [[nodiscard]] bool VerifyStoreReceipt(const StoreReceipt& receipt,
                                        VerifyCache* cache = nullptr) const {
    return receipt.Verify(broker_key_, cache);
  }
  [[nodiscard]] bool VerifyReclaimCertificate(const ReclaimCertificate& cert,
                                              VerifyCache* cache = nullptr) const {
    return cert.Verify(broker_key_, cache);
  }
  [[nodiscard]] bool VerifyReclaimReceipt(const ReclaimReceipt& receipt,
                                          VerifyCache* cache = nullptr) const {
    return receipt.Verify(broker_key_, cache);
  }

 private:
  RsaKeyPair key_;
  CardIdentity identity_;
  RsaPublicKey broker_key_;
  uint64_t usage_quota_;
  uint64_t quota_used_ = 0;
  uint64_t contributed_storage_;
  int64_t expiry_;
  // fileIds whose debit has already been returned (refund or reclaim credit).
  std::unordered_set<U160, U160Hash> credited_;
};

struct BrokerOptions {
  int key_bits = 256;
  // When > 0, pre-generate this many RSA moduli and issue cards with a fresh
  // public exponent over a pooled modulus. This is a simulation-scale
  // shortcut (sharing a modulus is not safe in production); it makes issuing
  // tens of thousands of cards cheap while keeping signatures real.
  int modulus_pool = 0;
  // Refuse to issue usage quota beyond contributed supply * max ratio.
  bool enforce_balance = false;
  double max_demand_supply_ratio = 1.0;
};

// The broker issues smartcards and tracks aggregate supply and demand. It
// never participates in PAST operations and learns nothing about stored
// files — matching the limited-trust role the paper gives it.
class Broker {
 public:
  Broker(uint64_t seed, const BrokerOptions& options = {});

  const RsaPublicKey& public_key() const { return key_.pub; }

  Result<std::unique_ptr<Smartcard>> IssueCard(uint64_t usage_quota,
                                               uint64_t contributed_storage,
                                               int64_t expiry = INT64_MAX);

  // Issues a card whose key is derived from `card_seed` alone (not the
  // broker's issuance order). Two brokers built from the same seed issue
  // byte-identical cards for the same card_seed — how a multi-process
  // cluster gives every daemon a distinct, deterministic identity under one
  // shared broker without any coordination.
  Result<std::unique_ptr<Smartcard>> IssueCardWithSeed(uint64_t card_seed,
                                                       uint64_t usage_quota,
                                                       uint64_t contributed_storage,
                                                       int64_t expiry = INT64_MAX);

  uint64_t total_demand() const { return total_demand_; }   // sum of quotas
  uint64_t total_supply() const { return total_supply_; }   // sum of contributions
  size_t cards_issued() const { return cards_issued_; }

 private:
  struct PooledModulus {
    BigNum n;
    BigNum phi;
    // Prime factors, kept so pooled cards get CRT signing components too.
    BigNum p;
    BigNum q;
  };

  RsaKeyPair MakeCardKey();
  StatusCode CheckBalance(uint64_t usage_quota, uint64_t contributed_storage) const;
  Result<std::unique_ptr<Smartcard>> Finalize(RsaKeyPair card_key,
                                              uint64_t usage_quota,
                                              uint64_t contributed_storage,
                                              int64_t expiry);

  BrokerOptions options_;
  Rng rng_;
  RsaKeyPair key_;
  std::vector<PooledModulus> pool_;
  size_t next_pool_index_ = 0;
  uint64_t total_demand_ = 0;
  uint64_t total_supply_ = 0;
  size_t cards_issued_ = 0;
};

}  // namespace past

