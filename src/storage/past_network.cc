#include "src/storage/past_network.h"

#include "src/common/check.h"

namespace past {

PastNetwork::PastNetwork(const PastNetworkOptions& options)
    : options_(options),
      broker_(options.overlay.seed ^ 0x9e3779b97f4a7c15ULL, options.broker),
      overlay_(options.overlay) {}

PastNode* PastNetwork::AddNode(uint64_t capacity, uint64_t quota) {
  Result<std::unique_ptr<Smartcard>> card = broker_.IssueCard(quota, capacity);
  if (!card.ok()) {
    return nullptr;
  }
  NodeId id = card.value()->DerivedNodeId();
  PastryNode* overlay_node = overlay_.AddNodeWithId(id);
  auto node = std::make_unique<PastNode>(overlay_node, std::move(card).value(),
                                         options_.past, overlay_.rng().NextU64());
  PastNode* raw = node.get();
  nodes_.push_back(std::move(node));
  return raw;
}

PastNode* PastNetwork::AddReadOnlyClient() {
  // A read-only user holds no card; its access point joins the overlay under
  // an ephemeral id (hash of a throwaway key).
  Bytes ephemeral_key = overlay_.rng().RandomBytes(64);
  PastryNode* overlay_node = overlay_.AddNodeWithId(NodeIdFromPublicKey(ephemeral_key));
  auto node = std::make_unique<PastNode>(overlay_node, broker_.public_key(),
                                         options_.past, overlay_.rng().NextU64());
  PastNode* raw = node.get();
  nodes_.push_back(std::move(node));
  return raw;
}

void PastNetwork::Build(int n) {
  for (int i = 0; i < n; ++i) {
    PastNode* node = AddNode();
    PAST_CHECK_MSG(node != nullptr, "broker refused a default card");
  }
}

PastNode* PastNetwork::NodeByAddr(NodeAddr addr) {
  for (auto& node : nodes_) {
    if (node->overlay()->addr() == addr) {
      return node.get();
    }
  }
  return nullptr;
}

PastNode* PastNetwork::RandomLiveNode() {
  std::vector<PastNode*> live;
  for (auto& node : nodes_) {
    if (node->overlay()->active()) {
      live.push_back(node.get());
    }
  }
  if (live.empty()) {
    return nullptr;
  }
  return live[overlay_.rng().PickIndex(live.size())];
}

void PastNetwork::DriveUntil(const bool& done, SimTime budget) {
  EventQueue& q = overlay_.queue();
  const SimTime deadline = q.Now() + budget;
  const SimTime chunk = 100 * kMicrosPerMilli;
  while (!done && q.Now() < deadline) {
    q.RunUntil(std::min(q.Now() + chunk, deadline));
  }
}

Result<FileId> PastNetwork::InsertSync(PastNode* client, std::string name,
                                       Bytes content, uint32_t k) {
  bool done = false;
  Result<FileId> result = StatusCode::kTimeout;
  client->Insert(std::move(name), std::move(content), k, [&](Result<FileId> r) {
    result = std::move(r);
    done = true;
  });
  DriveUntil(done, options_.past.request_timeout *
                       (options_.past.file_diversion_retries + 2));
  return result;
}

Result<FileId> PastNetwork::InsertSyntheticSync(PastNode* client, std::string name,
                                                uint64_t size, uint32_t k) {
  bool done = false;
  Result<FileId> result = StatusCode::kTimeout;
  client->InsertSynthetic(std::move(name), size, k, [&](Result<FileId> r) {
    result = std::move(r);
    done = true;
  });
  DriveUntil(done, options_.past.request_timeout *
                       (options_.past.file_diversion_retries + 2));
  return result;
}

Result<PastNode::LookupOutcome> PastNetwork::LookupSync(PastNode* client,
                                                        const FileId& id) {
  bool done = false;
  Result<PastNode::LookupOutcome> result = StatusCode::kTimeout;
  client->Lookup(id, [&](Result<PastNode::LookupOutcome> r) {
    result = std::move(r);
    done = true;
  });
  DriveUntil(done, options_.past.request_timeout * 2);
  return result;
}

StatusCode PastNetwork::ReclaimSync(PastNode* client, const FileId& id) {
  bool done = false;
  StatusCode status = StatusCode::kTimeout;
  client->Reclaim(id, [&](StatusCode s) {
    status = s;
    done = true;
  });
  DriveUntil(done, options_.past.request_timeout * 2);
  return status;
}

bool PastNetwork::AuditSync(PastNode* auditor, NodeAddr target, const FileId& id,
                            const FileCertificate& cert) {
  bool done = false;
  bool passed = false;
  auditor->Audit(target, id, cert, [&](bool p) {
    passed = p;
    done = true;
  });
  DriveUntil(done, options_.past.request_timeout * 2);
  return passed;
}

void PastNetwork::CrashNode(size_t i) {
  PAST_CHECK(i < nodes_.size());
  nodes_[i]->overlay()->Fail();
}

PastNode* PastNetwork::RestartNode(size_t i) {
  PAST_CHECK(i < nodes_.size());
  PastryNode* overlay_node = nodes_[i]->overlay();
  PAST_CHECK_MSG(!overlay_node->active(), "RestartNode on a live node");
  std::unique_ptr<Smartcard> card = nodes_[i]->TakeCard();
  // Tear the dead application down before its replacement opens the same
  // state directory.
  nodes_[i].reset();
  if (card != nullptr) {
    nodes_[i] = std::make_unique<PastNode>(overlay_node, std::move(card),
                                           options_.past, overlay_.rng().NextU64());
  } else {
    nodes_[i] = std::make_unique<PastNode>(overlay_node, broker_.public_key(),
                                           options_.past, overlay_.rng().NextU64());
  }
  PastryNode* bootstrap = overlay_.NearestLiveNode(overlay_node->addr());
  overlay_node->Recover(bootstrap != nullptr ? bootstrap->addr()
                                             : overlay_node->addr());
  return nodes_[i].get();
}

int PastNetwork::CountReplicas(const FileId& id) const {
  int count = 0;
  for (const auto& node : nodes_) {
    if (node->overlay()->active() && node->store().Has(id)) {
      ++count;
    }
  }
  return count;
}

PastNetwork::StorageSummary PastNetwork::Summary() const {
  StorageSummary summary;
  for (const auto& node : nodes_) {
    if (!node->overlay()->active()) {
      continue;
    }
    summary.capacity += node->store().capacity();
    summary.primary_used += node->store().used();
    summary.cache_used += node->file_cache().used();
    summary.files += node->store().file_count();
    summary.pointers += node->store().pointer_count();
  }
  return summary;
}

}  // namespace past
