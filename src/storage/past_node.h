// PastNode — a PAST storage node and client access point.
//
// Sits on a PastryNode as its application layer. Implements:
//  * the client operations insert / lookup / reclaim (Section 1-2), with
//    store-receipt collection and file diversion (salt retry) on failure;
//  * the storage-node side: certificate verification, replica storage,
//    replica diversion to leaf-set neighbors, receipts, reclaim handling;
//  * replica maintenance on leaf-set changes (restores k copies after node
//    failures, demotes replicas the node is no longer responsible for);
//  * caching of files that pass through the node (insert forwarding, lookup
//    serving) with GreedyDual-Size eviction;
//  * storage audits (challenge/response over file contents).
//
// Every node is simultaneously a storage node (capacity possibly zero) and a
// client access point — exactly the paper's symmetric peer model.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/diskstore/disk_store.h"
#include "src/pastry/pastry_node.h"
#include "src/storage/cache.h"
#include "src/storage/file_store.h"
#include "src/storage/messages.h"
#include "src/storage/smartcard.h"
#include "src/storage/verify_cache.h"

namespace past {

struct PastConfig {
  uint32_t default_replication = 5;  // k for files inserted by this client

  StoragePolicy policy;
  bool enable_replica_diversion = true;
  // Leaf members tried (sequentially) before giving up on a diversion. The
  // SOSP scheme targets the leaf node with the most free space; probing the
  // members achieves the same acceptance set without a free-space oracle.
  int diversion_candidates = 32;
  int file_diversion_retries = 3;  // extra salts the client tries (SOSP scheme)

  CachePolicy cache_policy = CachePolicy::kGreedyDualSize;
  bool cache_on_insert_path = true;  // nodes en route cache inserted files
  bool cache_push_on_lookup = true;  // server pushes a copy toward the client
  double cache_max_frac = 0.5;       // only cache files <= frac * free space
  // Local disk a read-only (cardless) access point dedicates to its cache;
  // card-holding nodes cache in the unused part of their contributed space.
  uint64_t read_only_cache_capacity = 16ULL << 20;

  SimTime request_timeout = 30 * kMicrosPerSecond;
  SimTime maintenance_delay = 500 * kMicrosPerMilli;  // debounce leaf changes

  // Full signature verification on every certificate/receipt. Turning it off
  // (placement-only experiments) changes no placement decision.
  bool verify_crypto = true;

  // Bound on the per-node verified-signature memo cache (see VerifyCache);
  // 0 disables memoization so every certificate check re-runs RSA.
  size_t verify_cache_entries = 4096;

  // A dishonest node returns store receipts without storing (the freeloader
  // the paper's random audits are designed to expose).
  bool honest = true;

  // When non-empty, each node persists its replica store durably under
  // <state_dir>/<nodeId hex> (diskstore engine) and recovers it on restart;
  // when empty, stores are purely in-memory and die with the node.
  std::string state_dir;
  // Engine tuning for the durable store (env/metrics fields are overridden
  // per node; metrics always point at the network registry).
  DiskStoreOptions disk;
};

class PastNode : public PastryApp {
 public:
  // The node's capacity is its smartcard's contributed storage.
  PastNode(PastryNode* overlay, std::unique_ptr<Smartcard> card,
           const PastConfig& config, uint64_t seed);
  // Read-only client access point (Section 2.1: "read-only users do not need
  // a smartcard"). It routes and looks up files — verifying them against the
  // broker's key — but cannot insert, reclaim, audit, or store replicas.
  PastNode(PastryNode* overlay, RsaPublicKey broker_key, const PastConfig& config,
           uint64_t seed);
  ~PastNode() override;

  PastNode(const PastNode&) = delete;
  PastNode& operator=(const PastNode&) = delete;

  // --- client API --------------------------------------------------------------

  using InsertCallback = std::function<void(Result<FileId>)>;
  using ReclaimCallback = std::function<void(StatusCode)>;

  struct LookupOutcome {
    FileCertificate cert;
    Bytes content;
    bool from_cache = false;
    NodeDescriptor replier;
  };
  using LookupCallback = std::function<void(Result<LookupOutcome>)>;

  // Inserts a file under `k` replicas (0 = config default). The callback
  // fires with the fileId once k store receipts arrived, or with an error
  // after all file-diversion retries failed.
  void Insert(std::string name, Bytes content, uint32_t k, InsertCallback cb);

  // Insert with metadata only (no content bytes shipped or stored): lets
  // storage-management experiments run far beyond available RAM. The
  // content hash is derived from (name, size).
  void InsertSynthetic(std::string name, uint64_t size, uint32_t k, InsertCallback cb);

  void Lookup(const FileId& file_id, LookupCallback cb);

  // Reclaims a file this client inserted (the file certificate is looked up
  // in the client's local records).
  void Reclaim(const FileId& file_id, ReclaimCallback cb);

  // Audits `target`: challenges it to prove possession of `file_id`.
  // Callback receives true if the node produced a correct proof.
  using AuditCallback = std::function<void(bool passed)>;
  void Audit(NodeAddr target, const FileId& file_id, const FileCertificate& cert,
             AuditCallback cb);

  // --- introspection -------------------------------------------------------------

  PastryNode* overlay() { return overlay_; }
  bool has_card() const { return card_ != nullptr; }
  const Smartcard& card() const {
    PAST_CHECK_MSG(card_ != nullptr, "read-only node has no smartcard");
    return *card_;
  }
  Smartcard& card() {
    PAST_CHECK_MSG(card_ != nullptr, "read-only node has no smartcard");
    return *card_;
  }
  // Surrenders the smartcard (for reuse by a replacement node after a
  // simulated reboot — the card survives the crash, the process does not).
  std::unique_ptr<Smartcard> TakeCard() { return std::move(card_); }

  const RsaPublicKey& broker_key() const { return broker_key_; }
  const FileStore& store() const { return store_; }
  FileStore& store() { return store_; }
  const Cache& file_cache() const { return cache_; }
  const VerifyCache& verify_cache() const { return verify_cache_; }
  const PastConfig& config() const { return config_; }

  // Certificates of files this client successfully inserted.
  const FileCertificate* OwnedFileCert(const FileId& id) const;

  // Bytes free for primary replicas (cached copies are evictable).
  uint64_t primary_free() const { return store_.free_space(); }

  struct Stats {
    uint64_t inserts_rooted = 0;       // insert requests this node coordinated
    uint64_t replicas_stored = 0;      // primary replicas accepted
    uint64_t diverted_accepted = 0;    // diverted replicas accepted for others
    uint64_t diversions_ok = 0;        // replicas this node diverted away
    uint64_t store_rejects = 0;        // replicas refused (incl. failed divert)
    uint64_t lookups_served_store = 0;
    uint64_t lookups_served_cache = 0;
    uint64_t maintenance_fetches = 0;  // replicas re-created by maintenance
    uint64_t demotions = 0;            // replicas dropped to cache
    uint64_t reclaims_processed = 0;
    uint64_t bad_certificates = 0;     // verification failures observed
  };
  const Stats& stats() const { return stats_; }

  // The simulation-wide metrics registry this node reports into.
  MetricsRegistry& metrics() { return overlay_->net()->metrics(); }

  // PastryApp:
  void Deliver(const DeliverContext& ctx, ByteSpan payload) override;
  bool Forward(const U128& key, uint32_t app_type, const NodeDescriptor& next,
               Bytes* payload) override;
  void ReceiveDirect(const NodeDescriptor& from, uint32_t app_type,
                     ByteSpan payload) override;
  void OnLeafSetChanged() override;

 private:
  struct PendingInsert {
    std::string name;
    Bytes content;
    Bytes content_hash;
    uint64_t size = 0;
    uint32_t k = 0;
    FileCertificate cert;
    std::vector<StoreReceipt> receipts;
    std::unordered_set<U128, U128Hash> receipt_nodes;
    int attempt = 0;
    EventQueue::EventId timer = 0;
    SimTime started = 0;  // client-call time; survives diversion retries so
                          // the latency observed is end-to-end
    uint64_t span = 0;    // tracer span of the whole operation (0 = untraced)
    InsertCallback cb;
  };
  struct PendingLookup {
    EventQueue::EventId timer = 0;
    SimTime started = 0;
    uint64_t span = 0;
    LookupCallback cb;
  };
  struct PendingReclaim {
    FileCertificate cert;
    EventQueue::EventId timer = 0;
    SimTime started = 0;
    uint64_t span = 0;
    ReclaimCallback cb;
  };
  struct PendingDivert {
    FileCertificate cert;
    Bytes content;
    NodeDescriptor client;
    std::vector<NodeDescriptor> candidates;  // remaining targets to try
  };
  struct PendingAudit {
    FileCertificate cert;
    uint64_t nonce = 0;
    EventQueue::EventId timer = 0;
    AuditCallback cb;
  };

  // Client side.
  void StartInsertAttempt(PendingInsert state);
  void FailInsertAttempt(const FileId& id, StatusCode reason);
  void HandleStoreReceipt(const StoreReceipt& receipt);
  void HandleStoreNack(const StoreNackPayload& nack);
  void HandleLookupReply(const LookupReplyPayload& reply);
  void HandleReclaimReceipt(const ReclaimReceipt& receipt);

  // Storage-node side.
  void HandleInsertAtRoot(const DeliverContext& ctx, const InsertRequestPayload& req);
  void HandleLookupAtRoot(const DeliverContext& ctx, const LookupRequestPayload& req);
  void HandleReclaimAtRoot(const ReclaimRequestPayload& req);
  void HandleStoreReplica(const StoreReplicaPayload& req);
  void HandleDivertStore(const NodeDescriptor& from, const DivertStorePayload& req);
  void HandleDivertResult(const NodeDescriptor& from, const DivertResultPayload& res);
  void TryNextDiversion(const FileId& id);
  void HandleFetchRequest(const NodeDescriptor& from, const FetchRequestPayload& req);
  void HandleFetchReply(const FetchReplyPayload& reply);
  void HandleReclaimReplica(const ReclaimRequestPayload& req);
  void HandleReplicaNotify(const NodeDescriptor& from, const ReplicaNotifyPayload& n);
  void HandleCachePush(const CachePushPayload& push);
  void HandleAuditChallenge(const NodeDescriptor& from,
                            const AuditChallengePayload& challenge);
  void HandleAuditResponse(const AuditResponsePayload& response);

  // Storage helpers.
  bool StorePrimary(const FileCertificate& cert, Bytes content, bool diverted,
                    const NodeDescriptor& diverted_from);
  void ServeLookup(const NodeDescriptor& client, const FileCertificate& cert,
                   const Bytes& content, bool from_cache,
                   const std::vector<NodeAddr>& path);
  void MaybeCache(const FileCertificate& cert, const Bytes& content);
  // Proof-of-possession digest: SHA-256(content hash || nonce), computable
  // only by nodes that kept the file's certified record. (Full-content audits
  // would additionally hash the stored bytes; see DESIGN.md.)
  static Bytes AuditDigest(const FileCertificate& cert, uint64_t nonce);

  // Maintenance.
  void ScheduleMaintenance();
  void RunMaintenance();

  // The store backend this node's config asks for: memory when state_dir is
  // empty, otherwise the durable engine under <state_dir>/<nodeId hex>
  // (falling back to memory, with a warning, if the directory cannot be
  // opened).
  static std::unique_ptr<StoreBackend> MakeBackend(const PastConfig& config,
                                                   const NodeId& id,
                                                   MetricsRegistry* metrics);

  void SendOp(NodeAddr to, PastOp op, Bytes payload) {
    overlay_->SendDirect(to, static_cast<uint32_t>(op), std::move(payload));
  }
  // Fan-out to several recipients: encode the wire once and share it, so a
  // bulk payload (file contents to k replicas) is one allocation, not k.
  void SendOpMulti(const std::vector<NodeAddr>& targets, PastOp op,
                   const Bytes& payload) {
    if (targets.empty()) {
      return;
    }
    SharedBytes wire = overlay_->EncodeDirect(static_cast<uint32_t>(op),
                                              ByteSpan(payload.data(), payload.size()));
    for (NodeAddr to : targets) {
      overlay_->SendDirectWire(to, wire);
    }
  }
  // Routes toward `key`; `parent_span` rides the wire so remote hop spans
  // attach under the issuing operation. Returns the route seq.
  uint64_t RouteOp(const U128& key, PastOp op, Bytes payload,
                   uint64_t parent_span = 0) {
    return overlay_->Route(key, static_cast<uint32_t>(op), std::move(payload),
                           /*replica_k=*/0, parent_span);
  }
  SimTime Now() const { return overlay_->queue()->Now(); }
  Tracer& tracer() { return overlay_->net()->tracer(); }
  // Stamps the op's terminal status and closes its span.
  void FinishOpSpan(uint64_t span, const char* status) {
    tracer().Annotate(span, "status", status);
    tracer().EndSpan(span, Now());
  }

  PastryNode* overlay_;
  std::unique_ptr<Smartcard> card_;  // null for read-only client nodes
  RsaPublicKey broker_key_;
  PastConfig config_;
  Rng rng_;
  FileStore store_;
  Cache cache_;
  // Memo cache for certificate/receipt verification. Per node, so a restart
  // (new PastNode) starts empty and never serves results from a prior life.
  VerifyCache verify_cache_;

  std::unordered_map<U160, PendingInsert, U160Hash> pending_inserts_;
  std::unordered_map<U160, PendingLookup, U160Hash> pending_lookups_;
  std::unordered_map<U160, PendingReclaim, U160Hash> pending_reclaims_;
  std::unordered_map<U160, PendingDivert, U160Hash> pending_diverts_;
  std::unordered_map<U160, PendingAudit, U160Hash> pending_audits_;
  std::unordered_map<U160, FileCertificate, U160Hash> owned_files_;

  EventQueue::EventId maintenance_timer_ = 0;
  Stats stats_;

  // Aggregate "past.*" instruments in the network's registry (shared by all
  // storage nodes on the network); resolved once at construction.
  void ResolveInstruments();

  struct Instruments {
    Counter* inserts_rooted;
    Counter* replicas_stored;
    Counter* diverted_accepted;
    Counter* diversions_ok;
    Counter* store_rejects;
    Counter* lookups_served_store;
    Counter* lookups_served_cache;
    Counter* maintenance_fetches;
    Counter* demotions;
    Counter* reclaims_processed;
    Counter* bad_certificates;
    // End-to-end client-op latency quantiles (sim-time, client call to
    // callback), observed only on success.
    LogHistogram* insert_latency;
    LogHistogram* lookup_latency;
    LogHistogram* reclaim_latency;
  };
  Instruments obs_;
};

}  // namespace past

